// Randomized parity tests: the fast compute backend (ops::Gemm blocked
// packed GEMM, im2col Conv2d, fused vec kernels, batched sketch
// accumulation) against the scalar reference oracle in tensor/ref_ops.h.
// Differences come only from floating-point reassociation, so everything is
// held to a relative tolerance of 1e-4.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "sketch/ams_sketch.h"
#include "tensor/ops.h"
#include "tensor/ref_ops.h"
#include "tensor/vec_ops.h"
#include "util/rng.h"

namespace fedra {
namespace {

constexpr double kRelTol = 1e-4;

std::vector<float> RandomVec(size_t n, uint64_t seed, float lo = -2.0f,
                             float hi = 2.0f) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) {
    x = rng.NextUniform(lo, hi);
  }
  return v;
}

// Relative max-error between two spans, normalized by the larger magnitude
// (with a floor of 1 so near-zero entries compare absolutely).
double MaxRelError(const std::vector<float>& got,
                   const std::vector<float>& want) {
  EXPECT_EQ(got.size(), want.size());
  double worst = 0.0;
  for (size_t i = 0; i < got.size(); ++i) {
    const double denom = std::max(
        1.0, std::max(std::fabs(static_cast<double>(got[i])),
                      std::fabs(static_cast<double>(want[i]))));
    worst = std::max(
        worst, std::fabs(static_cast<double>(got[i]) - want[i]) / denom);
  }
  return worst;
}

// ------------------------------------------------------------------ GEMM --

void CheckGemmParity(bool trans_a, bool trans_b, int m, int n, int k,
                     float alpha, float beta, uint64_t seed) {
  SCOPED_TRACE(::testing::Message()
               << "ta=" << trans_a << " tb=" << trans_b << " m=" << m
               << " n=" << n << " k=" << k << " alpha=" << alpha
               << " beta=" << beta);
  auto a = RandomVec(static_cast<size_t>(m) * k, seed);
  auto b = RandomVec(static_cast<size_t>(k) * n, seed + 1);
  auto c0 = RandomVec(static_cast<size_t>(m) * n, seed + 2);
  std::vector<float> c_fast = c0;
  std::vector<float> c_ref = c0;
  ops::Gemm(trans_a, trans_b, m, n, k, alpha, a.data(), b.data(), beta,
            c_fast.data());
  ref::Gemm(trans_a, trans_b, m, n, k, alpha, a.data(), b.data(), beta,
            c_ref.data());
  EXPECT_LE(MaxRelError(c_fast, c_ref), kRelTol);
}

TEST(GemmParityTest, AllTransposeCombos) {
  uint64_t seed = 100;
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      CheckGemmParity(ta, tb, 64, 64, 64, 1.0f, 0.0f, seed++);
    }
  }
}

TEST(GemmParityTest, OddShapesAndTileEdges) {
  uint64_t seed = 200;
  // Shapes straddling the micro-tile (8x32) and cache-block (96/256/1024)
  // boundaries, plus degenerate dims.
  const int shapes[][3] = {{1, 1, 1},    {3, 5, 7},     {17, 1, 9},
                           {8, 32, 256}, {9, 33, 29},   {97, 17, 257},
                           {96, 32, 256}, {5, 1030, 3}, {130, 130, 130}};
  for (const auto& s : shapes) {
    for (bool ta : {false, true}) {
      for (bool tb : {false, true}) {
        CheckGemmParity(ta, tb, s[0], s[1], s[2], 1.0f, 0.0f, seed++);
      }
    }
  }
}

TEST(GemmParityTest, AlphaBeta) {
  uint64_t seed = 300;
  for (float alpha : {0.0f, 1.0f, -1.3f, 0.5f}) {
    for (float beta : {0.0f, 1.0f, 0.25f, -2.0f}) {
      CheckGemmParity(false, true, 37, 41, 23, alpha, beta, seed++);
    }
  }
}

// ------------------------------------------------------------------ conv --

struct ConvCase {
  int kernel;
  int stride;
  int pad;
};

void CheckConvParity(const ConvCase& cc, int batch, int in_channels,
                     int out_channels, int in_h, int in_w, uint64_t seed) {
  SCOPED_TRACE(::testing::Message()
               << "k=" << cc.kernel << " s=" << cc.stride << " p=" << cc.pad
               << " in=" << in_h << "x" << in_w);
  ops::Conv2dGeometry g;
  g.batch = batch;
  g.in_channels = in_channels;
  g.in_h = in_h;
  g.in_w = in_w;
  g.out_channels = out_channels;
  g.kernel = cc.kernel;
  g.stride = cc.stride;
  g.pad = cc.pad;
  ASSERT_GT(g.out_h(), 0);
  ASSERT_GT(g.out_w(), 0);

  const size_t in_numel =
      static_cast<size_t>(batch) * in_channels * in_h * in_w;
  const size_t w_numel = static_cast<size_t>(out_channels) * in_channels *
                         cc.kernel * cc.kernel;
  const size_t out_numel =
      static_cast<size_t>(batch) * out_channels * g.out_h() * g.out_w();

  auto input = RandomVec(in_numel, seed);
  auto weight = RandomVec(w_numel, seed + 1, -0.5f, 0.5f);
  auto bias = RandomVec(static_cast<size_t>(out_channels), seed + 2);

  // Forward parity (with and without bias).
  std::vector<float> out_fast(out_numel);
  std::vector<float> out_ref(out_numel);
  ops::Conv2dWorkspace ws;
  ops::Conv2dForward(g, input.data(), weight.data(), bias.data(),
                     out_fast.data(), &ws);
  ref::Conv2dForward(g, input.data(), weight.data(), bias.data(),
                     out_ref.data());
  EXPECT_LE(MaxRelError(out_fast, out_ref), kRelTol) << "forward";

  ops::Conv2dForward(g, input.data(), weight.data(), nullptr, out_fast.data(),
                     &ws);
  ref::Conv2dForward(g, input.data(), weight.data(), nullptr, out_ref.data());
  EXPECT_LE(MaxRelError(out_fast, out_ref), kRelTol) << "forward, no bias";

  // Backward parity: all gradients, accumulating on random initial values
  // (the contract is +=, not =).
  auto grad_out = RandomVec(out_numel, seed + 3);
  auto gi0 = RandomVec(in_numel, seed + 4);
  auto gw0 = RandomVec(w_numel, seed + 5);
  auto gb0 = RandomVec(static_cast<size_t>(out_channels), seed + 6);
  std::vector<float> gi_fast = gi0, gi_ref = gi0;
  std::vector<float> gw_fast = gw0, gw_ref = gw0;
  std::vector<float> gb_fast = gb0, gb_ref = gb0;
  ops::Conv2dBackward(g, input.data(), weight.data(), grad_out.data(),
                      gi_fast.data(), gw_fast.data(), gb_fast.data(), &ws);
  ref::Conv2dBackward(g, input.data(), weight.data(), grad_out.data(),
                      gi_ref.data(), gw_ref.data(), gb_ref.data());
  EXPECT_LE(MaxRelError(gi_fast, gi_ref), kRelTol) << "grad_input";
  EXPECT_LE(MaxRelError(gw_fast, gw_ref), kRelTol) << "grad_weight";
  EXPECT_LE(MaxRelError(gb_fast, gb_ref), kRelTol) << "grad_bias";

  // Null grad_input / grad_bias (first layer; bias-less conv).
  std::vector<float> gw2_fast = gw0, gw2_ref = gw0;
  ops::Conv2dBackward(g, input.data(), weight.data(), grad_out.data(),
                      nullptr, gw2_fast.data(), nullptr, &ws);
  ref::Conv2dBackward(g, input.data(), weight.data(), grad_out.data(),
                      nullptr, gw2_ref.data(), nullptr);
  EXPECT_LE(MaxRelError(gw2_fast, gw2_ref), kRelTol)
      << "grad_weight, null grad_input/grad_bias";
}

TEST(ConvParityTest, StridePadKernelSweep) {
  const ConvCase cases[] = {
      {1, 1, 0},  // pointwise fast path
      {3, 1, 1},  // VGG-style same-conv
      {3, 2, 1},  // strided downsampling
      {5, 1, 2},  // large kernel, same padding
      {2, 2, 0},  // even kernel, no padding
      {3, 1, 0},  // valid conv
      {4, 2, 1},  // even kernel with stride and pad
      {3, 3, 2},  // stride > 1 with uneven coverage
  };
  uint64_t seed = 500;
  for (const auto& cc : cases) {
    CheckConvParity(cc, /*batch=*/2, /*in_channels=*/3, /*out_channels=*/4,
                    /*in_h=*/9, /*in_w=*/7, seed);
    seed += 10;
  }
}

TEST(ConvParityTest, SinglePixelOutputAndChannelExtremes) {
  CheckConvParity({3, 1, 0}, 1, 1, 1, 3, 3, 900);   // output is 1x1
  CheckConvParity({3, 1, 1}, 1, 8, 1, 5, 5, 910);   // many-in one-out
  CheckConvParity({1, 1, 0}, 3, 1, 8, 4, 4, 920);   // one-in many-out, 1x1
}

// ------------------------------------------------------------- vec fused --

TEST(VecParityTest, ReductionsMatchScalarReference) {
  for (size_t n : {size_t{1}, size_t{3}, size_t{7}, size_t{1023},
                   size_t{4099}}) {
    auto a = RandomVec(n, 40 + n);
    auto b = RandomVec(n, 41 + n);
    EXPECT_NEAR(vec::Dot(a.data(), b.data(), n),
                ref::Dot(a.data(), b.data(), n),
                kRelTol * std::max(1.0, std::fabs(ref::Dot(a.data(), b.data(),
                                                           n))));
    EXPECT_NEAR(vec::SquaredNorm(a.data(), n), ref::SquaredNorm(a.data(), n),
                kRelTol * std::max(1.0, ref::SquaredNorm(a.data(), n)));
    EXPECT_NEAR(vec::Sum(a.data(), n), ref::Sum(a.data(), n),
                kRelTol * std::max(1.0, std::fabs(ref::Sum(a.data(), n))));
  }
}

TEST(VecParityTest, SubSquaredNormMatchesUnfused) {
  for (size_t n : {size_t{1}, size_t{5}, size_t{1024}, size_t{4097}}) {
    auto a = RandomVec(n, 50 + n);
    auto b = RandomVec(n, 51 + n);
    std::vector<float> out_fast(n), out_ref(n);
    const double sq_fast = vec::SubSquaredNorm(a.data(), b.data(),
                                               out_fast.data(), n);
    const double sq_ref = ref::SubSquaredNorm(a.data(), b.data(),
                                              out_ref.data(), n);
    EXPECT_LE(MaxRelError(out_fast, out_ref), kRelTol);
    EXPECT_NEAR(sq_fast, sq_ref, kRelTol * std::max(1.0, sq_ref));
  }
}

TEST(VecParityTest, AxpyNormMatchesUnfused) {
  for (size_t n : {size_t{1}, size_t{6}, size_t{1025}, size_t{8191}}) {
    auto x = RandomVec(n, 60 + n);
    auto y0 = RandomVec(n, 61 + n);
    std::vector<float> y_fast = y0, y_ref = y0;
    const double sq_fast = vec::AxpyNorm(-0.37f, x.data(), y_fast.data(), n);
    const double sq_ref = ref::AxpyNorm(-0.37f, x.data(), y_ref.data(), n);
    EXPECT_LE(MaxRelError(y_fast, y_ref), kRelTol);
    EXPECT_NEAR(sq_fast, sq_ref, kRelTol * std::max(1.0, sq_ref));
  }
}

TEST(VecParityTest, AddScaledDiffMatchesRef) {
  // The fused FedProx proximal kernel: y += mu * (w - anchor).
  for (size_t n : {size_t{1}, size_t{5}, size_t{255}, size_t{1024},
                   size_t{4099}}) {
    auto w = RandomVec(n, 70 + n);
    auto anchor = RandomVec(n, 71 + n);
    auto y0 = RandomVec(n, 72 + n);
    std::vector<float> y_fast = y0, y_ref = y0;
    vec::AddScaledDiff(0.73f, w.data(), anchor.data(), y_fast.data(), n);
    ref::AddScaledDiff(0.73f, w.data(), anchor.data(), y_ref.data(), n);
    EXPECT_LE(MaxRelError(y_fast, y_ref), kRelTol);
  }
}

TEST(VecParityTest, ReduceScaleMatchesRef) {
  // The collectives' fused tree-reduce + scale kernel, across buffer counts
  // straddling the pairwise-combine edge cases (1, odd, even) and lengths
  // straddling the 256-element accumulator block.
  for (size_t k : {size_t{1}, size_t{2}, size_t{3}, size_t{8}, size_t{9}}) {
    for (size_t n : {size_t{1}, size_t{255}, size_t{256}, size_t{257},
                     size_t{5000}}) {
      std::vector<std::vector<float>> bufs(k);
      std::vector<const float*> ptrs(k);
      for (size_t kk = 0; kk < k; ++kk) {
        bufs[kk] = RandomVec(n, 80 + 10 * k + kk);
        ptrs[kk] = bufs[kk].data();
      }
      const double scale = 1.0 / static_cast<double>(k);
      std::vector<float> out_fast(n), out_ref(n);
      vec::ReduceScale(ptrs.data(), k, n, scale, out_fast.data());
      ref::ReduceScale(ptrs.data(), k, n, scale, out_ref.data());
      EXPECT_LE(MaxRelError(out_fast, out_ref), kRelTol);
      // Aliasing contract: out may be bufs[0] itself.
      std::vector<float> aliased = bufs[0];
      ptrs[0] = aliased.data();
      vec::ReduceScale(ptrs.data(), k, n, scale, aliased.data());
      EXPECT_LE(MaxRelError(aliased, out_ref), kRelTol);
      ptrs[0] = bufs[0].data();
    }
  }
}

TEST(VecParityTest, WeightedReduceMatchesRef) {
  for (size_t k : {size_t{1}, size_t{4}, size_t{7}}) {
    for (size_t n : {size_t{1}, size_t{250}, size_t{300}, size_t{2049}}) {
      std::vector<std::vector<float>> bufs(k);
      std::vector<const float*> ptrs(k);
      std::vector<double> weights(k);
      double sum = 0.0;
      Rng rng(90 + 10 * k + n);
      for (size_t kk = 0; kk < k; ++kk) {
        bufs[kk] = RandomVec(n, 91 + 10 * k + kk);
        ptrs[kk] = bufs[kk].data();
        weights[kk] = rng.NextUniform(0.1f, 2.0f);
        sum += weights[kk];
      }
      for (auto& w : weights) {
        w /= sum;
      }
      std::vector<float> out_fast(n), out_ref(n);
      vec::WeightedReduce(ptrs.data(), weights.data(), k, n,
                          out_fast.data());
      ref::WeightedReduce(ptrs.data(), weights.data(), k, n,
                          out_ref.data());
      EXPECT_LE(MaxRelError(out_fast, out_ref), kRelTol);
    }
  }
}

// -------------------------------------------------- pooling / depthwise --

ops::Conv2dGeometry PoolGeometry(int batch, int channels, int in_h, int in_w,
                                 int kernel, int stride, int pad) {
  ops::Conv2dGeometry g;
  g.batch = batch;
  g.in_channels = channels;
  g.in_h = in_h;
  g.in_w = in_w;
  g.out_channels = channels;
  g.kernel = kernel;
  g.stride = stride;
  g.pad = pad;
  return g;
}

void CheckMaxPoolParity(int batch, int channels, int in_h, int in_w,
                        int kernel, int stride, int pad, uint64_t seed) {
  SCOPED_TRACE(::testing::Message()
               << "maxpool k=" << kernel << " s=" << stride << " p=" << pad
               << " in=" << in_h << "x" << in_w);
  const auto g = PoolGeometry(batch, channels, in_h, in_w, kernel, stride,
                              pad);
  ASSERT_GT(g.out_h(), 0);
  ASSERT_GT(g.out_w(), 0);
  const size_t in_numel =
      static_cast<size_t>(batch) * channels * in_h * in_w;
  const size_t out_numel =
      static_cast<size_t>(batch) * channels * g.out_h() * g.out_w();
  auto input = RandomVec(in_numel, seed);

  std::vector<float> out_fast(out_numel), out_ref(out_numel);
  std::vector<int> arg_fast(out_numel, -1), arg_ref(out_numel, -1);
  ops::MaxPool2dForward(g, input.data(), out_fast.data(), arg_fast.data());
  ref::MaxPool2dForward(g, input.data(), out_ref.data(), arg_ref.data());
  EXPECT_LE(MaxRelError(out_fast, out_ref), kRelTol) << "forward";
  // Same strict-> comparison in the same tap order: argmax must match
  // exactly, ties included.
  EXPECT_EQ(arg_fast, arg_ref) << "argmax";

  auto grad_out = RandomVec(out_numel, seed + 1);
  auto gi0 = RandomVec(in_numel, seed + 2);
  std::vector<float> gi_fast = gi0, gi_ref = gi0;
  ops::MaxPool2dBackward(g, grad_out.data(), arg_fast.data(), gi_fast.data());
  ref::MaxPool2dBackward(g, grad_out.data(), arg_ref.data(), gi_ref.data());
  EXPECT_LE(MaxRelError(gi_fast, gi_ref), kRelTol) << "grad_input";
}

void CheckAvgPoolParity(int batch, int channels, int in_h, int in_w,
                        int kernel, int stride, int pad, uint64_t seed) {
  SCOPED_TRACE(::testing::Message()
               << "avgpool k=" << kernel << " s=" << stride << " p=" << pad
               << " in=" << in_h << "x" << in_w);
  const auto g = PoolGeometry(batch, channels, in_h, in_w, kernel, stride,
                              pad);
  ASSERT_GT(g.out_h(), 0);
  ASSERT_GT(g.out_w(), 0);
  const size_t in_numel =
      static_cast<size_t>(batch) * channels * in_h * in_w;
  const size_t out_numel =
      static_cast<size_t>(batch) * channels * g.out_h() * g.out_w();
  auto input = RandomVec(in_numel, seed);

  std::vector<float> out_fast(out_numel), out_ref(out_numel);
  ops::AvgPool2dForward(g, input.data(), out_fast.data());
  ref::AvgPool2dForward(g, input.data(), out_ref.data());
  EXPECT_LE(MaxRelError(out_fast, out_ref), kRelTol) << "forward";

  auto grad_out = RandomVec(out_numel, seed + 1);
  auto gi0 = RandomVec(in_numel, seed + 2);
  std::vector<float> gi_fast = gi0, gi_ref = gi0;
  ops::AvgPool2dBackward(g, grad_out.data(), gi_fast.data());
  ref::AvgPool2dBackward(g, grad_out.data(), gi_ref.data());
  EXPECT_LE(MaxRelError(gi_fast, gi_ref), kRelTol) << "grad_input";
}

TEST(PoolParityTest, ShapeStridePadSweep) {
  // Odd extents, stride > 1, windows clipping the right/bottom borders, and
  // padded windows that clip on every side.
  const int cases[][3] = {{2, 2, 0}, {3, 1, 0}, {3, 2, 0}, {3, 2, 1},
                          {2, 1, 0}, {5, 3, 2}, {4, 4, 0}, {3, 3, 1}};
  uint64_t seed = 2000;
  for (const auto& c : cases) {
    CheckMaxPoolParity(2, 3, 9, 7, c[0], c[1], c[2], seed);
    CheckAvgPoolParity(2, 3, 9, 7, c[0], c[1], c[2], seed + 5);
    CheckMaxPoolParity(1, 5, 11, 5, c[0], c[1], c[2], seed + 10);
    CheckAvgPoolParity(1, 5, 11, 5, c[0], c[1], c[2], seed + 15);
    seed += 20;
  }
  // Large enough to cross the plane-parallel threshold.
  CheckMaxPoolParity(4, 16, 32, 32, 2, 2, 0, 2900);
  CheckAvgPoolParity(4, 16, 32, 32, 2, 2, 0, 2910);
}

TEST(PoolParityTest, RepeatedValuesTieBreakIdentically) {
  // Quantized inputs force duplicate window maxima; argmax must still pick
  // the same (first) tap as the oracle.
  const auto g = PoolGeometry(2, 2, 8, 8, 3, 1, 1);
  const size_t in_numel = static_cast<size_t>(2) * 2 * 8 * 8;
  auto input = RandomVec(in_numel, 3000);
  for (auto& x : input) {
    x = std::round(x);  // values in {-2, -1, 0, 1, 2}
  }
  const size_t out_numel =
      static_cast<size_t>(2) * 2 * g.out_h() * g.out_w();
  std::vector<float> out_fast(out_numel), out_ref(out_numel);
  std::vector<int> arg_fast(out_numel), arg_ref(out_numel);
  ops::MaxPool2dForward(g, input.data(), out_fast.data(), arg_fast.data());
  ref::MaxPool2dForward(g, input.data(), out_ref.data(), arg_ref.data());
  EXPECT_EQ(arg_fast, arg_ref);
  EXPECT_LE(MaxRelError(out_fast, out_ref), kRelTol);
}

void CheckDepthwiseParity(int batch, int channels, int in_h, int in_w,
                          int kernel, int stride, int pad, uint64_t seed) {
  SCOPED_TRACE(::testing::Message()
               << "dwconv k=" << kernel << " s=" << stride << " p=" << pad
               << " c=" << channels << " in=" << in_h << "x" << in_w);
  const auto g = PoolGeometry(batch, channels, in_h, in_w, kernel, stride,
                              pad);
  ASSERT_GT(g.out_h(), 0);
  ASSERT_GT(g.out_w(), 0);
  const size_t in_numel =
      static_cast<size_t>(batch) * channels * in_h * in_w;
  const size_t w_numel = static_cast<size_t>(channels) * kernel * kernel;
  const size_t out_numel =
      static_cast<size_t>(batch) * channels * g.out_h() * g.out_w();
  auto input = RandomVec(in_numel, seed);
  auto weight = RandomVec(w_numel, seed + 1, -0.5f, 0.5f);
  auto bias = RandomVec(static_cast<size_t>(channels), seed + 2);

  std::vector<float> out_fast(out_numel), out_ref(out_numel);
  ops::DepthwiseConv2dForward(g, input.data(), weight.data(), bias.data(),
                              out_fast.data());
  ref::DepthwiseConv2dForward(g, input.data(), weight.data(), bias.data(),
                              out_ref.data());
  EXPECT_LE(MaxRelError(out_fast, out_ref), kRelTol) << "forward";

  ops::DepthwiseConv2dForward(g, input.data(), weight.data(), nullptr,
                              out_fast.data());
  ref::DepthwiseConv2dForward(g, input.data(), weight.data(), nullptr,
                              out_ref.data());
  EXPECT_LE(MaxRelError(out_fast, out_ref), kRelTol) << "forward, no bias";

  // Backward accumulates on random initial values (the contract is +=).
  auto grad_out = RandomVec(out_numel, seed + 3);
  auto gi0 = RandomVec(in_numel, seed + 4);
  auto gw0 = RandomVec(w_numel, seed + 5);
  auto gb0 = RandomVec(static_cast<size_t>(channels), seed + 6);
  std::vector<float> gi_fast = gi0, gi_ref = gi0;
  std::vector<float> gw_fast = gw0, gw_ref = gw0;
  std::vector<float> gb_fast = gb0, gb_ref = gb0;
  ops::DepthwiseConv2dBackward(g, input.data(), weight.data(),
                               grad_out.data(), gi_fast.data(),
                               gw_fast.data(), gb_fast.data());
  ref::DepthwiseConv2dBackward(g, input.data(), weight.data(),
                               grad_out.data(), gi_ref.data(), gw_ref.data(),
                               gb_ref.data());
  EXPECT_LE(MaxRelError(gi_fast, gi_ref), kRelTol) << "grad_input";
  EXPECT_LE(MaxRelError(gw_fast, gw_ref), kRelTol) << "grad_weight";
  EXPECT_LE(MaxRelError(gb_fast, gb_ref), kRelTol) << "grad_bias";

  // Null grad_input / grad_bias.
  std::vector<float> gw2_fast = gw0, gw2_ref = gw0;
  ops::DepthwiseConv2dBackward(g, input.data(), weight.data(),
                               grad_out.data(), nullptr, gw2_fast.data(),
                               nullptr);
  ref::DepthwiseConv2dBackward(g, input.data(), weight.data(),
                               grad_out.data(), nullptr, gw2_ref.data(),
                               nullptr);
  EXPECT_LE(MaxRelError(gw2_fast, gw2_ref), kRelTol)
      << "grad_weight, null grad_input/grad_bias";
}

TEST(DepthwiseParityTest, StridePadKernelSweep) {
  const int cases[][3] = {{3, 1, 1},  // ConvNeXt-style same conv
                          {3, 2, 1},  // strided downsampling
                          {5, 1, 2},  // large kernel
                          {7, 1, 3},  // ConvNeXt 7x7
                          {2, 2, 0},  // even kernel
                          {3, 1, 0},  // valid conv
                          {3, 3, 2}}; // stride > kernel - pad
  uint64_t seed = 4000;
  for (const auto& c : cases) {
    CheckDepthwiseParity(2, 3, 9, 7, c[0], c[1], c[2], seed);
    CheckDepthwiseParity(1, 6, 13, 11, c[0], c[1], c[2], seed + 7);
    seed += 20;
  }
  // Large enough to cross the plane-parallel threshold.
  CheckDepthwiseParity(2, 32, 24, 24, 3, 1, 1, 4900);
}

// ------------------------------------------------------------- batchnorm --

void CheckBatchNormParity(int batch, int channels, int h, int w,
                          uint64_t seed) {
  SCOPED_TRACE(::testing::Message() << "bn b=" << batch << " c=" << channels
                                    << " plane=" << h << "x" << w);
  const size_t plane = static_cast<size_t>(h) * w;
  const size_t numel = static_cast<size_t>(batch) * channels * plane;
  auto input = RandomVec(numel, seed);
  auto gamma = RandomVec(static_cast<size_t>(channels), seed + 1, 0.5f, 1.5f);
  auto beta = RandomVec(static_cast<size_t>(channels), seed + 2);
  const float epsilon = 1e-5f;

  std::vector<float> xhat_fast(numel), xhat_ref(numel);
  std::vector<float> istd_fast(static_cast<size_t>(channels));
  std::vector<float> istd_ref(static_cast<size_t>(channels));
  std::vector<float> out_fast(numel), out_ref(numel);
  ops::BatchNorm2dForward(batch, channels, plane, input.data(), gamma.data(),
                          beta.data(), epsilon, xhat_fast.data(),
                          istd_fast.data(), out_fast.data());
  ref::BatchNorm2dForward(batch, channels, plane, input.data(), gamma.data(),
                          beta.data(), epsilon, xhat_ref.data(),
                          istd_ref.data(), out_ref.data());
  EXPECT_LE(MaxRelError(out_fast, out_ref), kRelTol) << "output";
  EXPECT_LE(MaxRelError(xhat_fast, xhat_ref), kRelTol) << "xhat";
  EXPECT_LE(MaxRelError(istd_fast, istd_ref), kRelTol) << "inv_std";

  auto grad_out = RandomVec(numel, seed + 3);
  auto gg0 = RandomVec(static_cast<size_t>(channels), seed + 4);
  auto gb0 = RandomVec(static_cast<size_t>(channels), seed + 5);
  std::vector<float> gg_fast = gg0, gg_ref = gg0;
  std::vector<float> gb_fast = gb0, gb_ref = gb0;
  std::vector<float> gi_fast(numel), gi_ref(numel);
  ops::BatchNorm2dBackward(batch, channels, plane, grad_out.data(),
                           xhat_fast.data(), istd_fast.data(), gamma.data(),
                           gg_fast.data(), gb_fast.data(), gi_fast.data());
  ref::BatchNorm2dBackward(batch, channels, plane, grad_out.data(),
                           xhat_ref.data(), istd_ref.data(), gamma.data(),
                           gg_ref.data(), gb_ref.data(), gi_ref.data());
  EXPECT_LE(MaxRelError(gi_fast, gi_ref), kRelTol) << "grad_input";
  EXPECT_LE(MaxRelError(gg_fast, gg_ref), kRelTol) << "grad_gamma";
  EXPECT_LE(MaxRelError(gb_fast, gb_ref), kRelTol) << "grad_beta";
}

TEST(BatchNormParityTest, ShapeSweep) {
  CheckBatchNormParity(1, 1, 1, 1, 5000);      // degenerate
  CheckBatchNormParity(2, 3, 5, 7, 5010);      // odd plane
  CheckBatchNormParity(3, 8, 9, 9, 5020);      // odd, multi-channel
  CheckBatchNormParity(4, 16, 16, 16, 5030);   // crosses parallel threshold
  CheckBatchNormParity(2, 1, 31, 3, 5040);     // single channel, odd plane
}

TEST(VecParityTest, SumAndSquaredNormMatchesUnfused) {
  for (size_t n : {size_t{1}, size_t{5}, size_t{1023}, size_t{4099}}) {
    auto x = RandomVec(n, 70 + n);
    double sum = 1.5;     // accumulates on a nonzero start (+= contract)
    double sum_sq = -2.0;
    vec::SumAndSquaredNorm(x.data(), n, &sum, &sum_sq);
    const double want_sum = 1.5 + ref::Sum(x.data(), n);
    const double want_sq = -2.0 + ref::SquaredNorm(x.data(), n);
    EXPECT_NEAR(sum, want_sum, kRelTol * std::max(1.0, std::fabs(want_sum)));
    EXPECT_NEAR(sum_sq, want_sq, kRelTol * std::max(1.0, std::fabs(want_sq)));
  }
}

// ---------------------------------------------------------------- sketch --

TEST(SketchParityTest, BatchedAccumulateMatchesPerCoordinateUpdate) {
  const size_t dim = 10000;  // crosses the 4096-coordinate blocking boundary
  auto family = AmsHashFamily::Create(5, 250, dim, 77);
  auto v = RandomVec(dim, 78);
  AmsSketch batched(family);
  batched.AccumulateVector(v.data());
  AmsSketch reference(family);
  for (size_t j = 0; j < dim; ++j) {
    reference.Update(j, v[j]);
  }
  std::vector<float> got(batched.data(), batched.data() + batched.numel());
  std::vector<float> want(reference.data(),
                          reference.data() + reference.numel());
  EXPECT_LE(MaxRelError(got, want), kRelTol);
}

TEST(SketchParityTest, OffsetTablesMatchBucketSignAccessors) {
  const size_t dim = 513;
  auto family = AmsHashFamily::Create(3, 17, dim, 9);
  for (int r = 0; r < family->rows(); ++r) {
    const uint32_t* offsets = family->cell_offsets(r);
    const float* signs = family->sign_values(r);
    for (size_t j = 0; j < dim; ++j) {
      EXPECT_EQ(offsets[j],
                static_cast<uint32_t>(r) * family->cols() +
                    family->bucket(r, j));
      EXPECT_EQ(signs[j], family->sign(r, j));
    }
  }
}

}  // namespace
}  // namespace fedra
