// Unit tests for the flat-vector kernels in src/tensor/vec_ops.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/vec_ops.h"
#include "util/rng.h"

namespace fedra {
namespace {

std::vector<float> RandomVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) {
    x = rng.NextUniform(-2.0f, 2.0f);
  }
  return v;
}

TEST(VecOpsTest, CopyAndFill) {
  auto src = RandomVec(100, 1);
  std::vector<float> dst(100, 0.0f);
  vec::Copy(src.data(), dst.data(), 100);
  EXPECT_EQ(src, dst);
  vec::Fill(dst.data(), 100, 3.5f);
  for (float x : dst) {
    EXPECT_EQ(x, 3.5f);
  }
}

TEST(VecOpsTest, ScaleMultipliesEveryElement) {
  auto v = RandomVec(64, 2);
  auto expected = v;
  vec::Scale(v.data(), v.size(), -2.0f);
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_FLOAT_EQ(v[i], expected[i] * -2.0f);
  }
}

TEST(VecOpsTest, AxpyAccumulates) {
  auto x = RandomVec(64, 3);
  auto y = RandomVec(64, 4);
  auto y0 = y;
  vec::Axpy(0.5f, x.data(), y.data(), 64);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_FLOAT_EQ(y[i], y0[i] + 0.5f * x[i]);
  }
}

TEST(VecOpsTest, AddSubMulElementwise) {
  auto a = RandomVec(33, 5);
  auto b = RandomVec(33, 6);
  std::vector<float> out(33);
  vec::Add(a.data(), b.data(), out.data(), 33);
  for (size_t i = 0; i < 33; ++i) {
    EXPECT_FLOAT_EQ(out[i], a[i] + b[i]);
  }
  vec::Sub(a.data(), b.data(), out.data(), 33);
  for (size_t i = 0; i < 33; ++i) {
    EXPECT_FLOAT_EQ(out[i], a[i] - b[i]);
  }
  vec::Mul(a.data(), b.data(), out.data(), 33);
  for (size_t i = 0; i < 33; ++i) {
    EXPECT_FLOAT_EQ(out[i], a[i] * b[i]);
  }
}

TEST(VecOpsTest, DotMatchesManualSum) {
  std::vector<float> a = {1.0f, 2.0f, 3.0f};
  std::vector<float> b = {4.0f, -5.0f, 6.0f};
  EXPECT_DOUBLE_EQ(vec::Dot(a.data(), b.data(), 3), 4.0 - 10.0 + 18.0);
}

TEST(VecOpsTest, SquaredNormAndNorm) {
  std::vector<float> v = {3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(vec::SquaredNorm(v.data(), 2), 25.0);
  EXPECT_DOUBLE_EQ(vec::Norm(v.data(), 2), 5.0);
}

TEST(VecOpsTest, SumAccumulates) {
  std::vector<float> v = {0.5f, -1.5f, 2.0f};
  EXPECT_DOUBLE_EQ(vec::Sum(v.data(), 3), 1.0);
}

TEST(VecOpsTest, DotIsStableForLargeVectors) {
  // Double accumulation keeps error tiny even at 1e6 elements.
  const size_t n = 1 << 20;
  std::vector<float> ones(n, 1.0f);
  EXPECT_DOUBLE_EQ(vec::Sum(ones.data(), n), static_cast<double>(n));
  EXPECT_DOUBLE_EQ(vec::Dot(ones.data(), ones.data(), n),
                   static_cast<double>(n));
}

TEST(VecOpsTest, MaxAbsDiff) {
  std::vector<float> a = {1.0f, 2.0f, 3.0f};
  std::vector<float> b = {1.5f, 2.0f, 1.0f};
  EXPECT_DOUBLE_EQ(vec::MaxAbsDiff(a.data(), b.data(), 3), 2.0);
  EXPECT_DOUBLE_EQ(vec::MaxAbsDiff(a.data(), a.data(), 3), 0.0);
}

TEST(VecOpsTest, ZeroLengthIsSafe) {
  vec::Fill(nullptr, 0, 1.0f);
  EXPECT_DOUBLE_EQ(vec::Sum(nullptr, 0), 0.0);
  EXPECT_DOUBLE_EQ(vec::SquaredNorm(nullptr, 0), 0.0);
}

}  // namespace
}  // namespace fedra
