// Tests for model checkpointing (nn/serialize).

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "nn/serialize.h"
#include "nn/zoo.h"

namespace fedra {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(SerializeTest, RoundTripPreservesEveryParameter) {
  auto model = zoo::Mlp(16, {8}, 4);
  model->InitParams(42);
  const std::string path = TempPath("roundtrip.ckpt");
  ASSERT_TRUE(SaveModelParams(*model, path).ok());

  auto restored = zoo::Mlp(16, {8}, 4);
  restored->InitParams(7);  // different init, must be overwritten
  ASSERT_TRUE(LoadModelParams(path, restored.get()).ok());
  for (size_t i = 0; i < model->num_params(); ++i) {
    ASSERT_EQ(model->params()[i], restored->params()[i]) << "param " << i;
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadParamsVectorMatches) {
  auto model = zoo::LeNet5(1, 16, 10);
  model->InitParams(3);
  const std::string path = TempPath("vector.ckpt");
  ASSERT_TRUE(SaveModelParams(*model, path).ok());
  auto params = LoadParamsVector(path);
  ASSERT_TRUE(params.ok());
  ASSERT_EQ(params->size(), model->num_params());
  EXPECT_EQ((*params)[0], model->params()[0]);
  EXPECT_EQ(params->back(), model->params()[model->num_params() - 1]);
  std::remove(path.c_str());
}

TEST(SerializeTest, DimensionMismatchRejected) {
  auto model = zoo::Mlp(16, {8}, 4);
  model->InitParams(1);
  const std::string path = TempPath("mismatch.ckpt");
  ASSERT_TRUE(SaveModelParams(*model, path).ok());
  auto other = zoo::Mlp(16, {9}, 4);
  Status status = LoadModelParams(path, other.get());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("mismatch"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  auto model = zoo::Mlp(16, {8}, 4);
  EXPECT_EQ(LoadModelParams("/nonexistent/x.ckpt", model.get()).code(),
            StatusCode::kIOError);
}

TEST(SerializeTest, GarbageFileRejected) {
  const std::string path = TempPath("garbage.ckpt");
  {
    std::ofstream file(path, std::ios::binary);
    file << "this is not a checkpoint at all, but long enough for a header";
  }
  auto params = LoadParamsVector(path);
  EXPECT_EQ(params.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedPayloadRejected) {
  auto model = zoo::Mlp(16, {8}, 4);
  model->InitParams(5);
  const std::string path = TempPath("truncated.ckpt");
  ASSERT_TRUE(SaveModelParams(*model, path).ok());
  // Chop off the last half of the file.
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size() / 2));
  }
  auto params = LoadParamsVector(path);
  EXPECT_EQ(params.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedHeaderRejected) {
  const std::string path = TempPath("header.ckpt");
  {
    std::ofstream file(path, std::ios::binary);
    file << "FEDRA";  // shorter than the header
  }
  auto params = LoadParamsVector(path);
  EXPECT_EQ(params.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fedra
