// Tests for the dynamic-Theta controller (paper §5 future-work extension).

#include <gtest/gtest.h>

#include "core/theta_controller.h"

namespace fedra {
namespace {

ThetaControllerConfig BaseConfig() {
  ThetaControllerConfig config;
  config.target_bytes_per_step = 1000.0;
  config.adjust_every_steps = 10;
  config.gain = 1.0;
  config.min_theta = 1e-6;
  config.max_theta = 1e6;
  config.max_step_ratio = 4.0;
  return config;
}

TEST(ThetaControllerConfigTest, Validation) {
  EXPECT_TRUE(BaseConfig().Validate().ok());
  auto config = BaseConfig();
  config.target_bytes_per_step = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = BaseConfig();
  config.adjust_every_steps = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = BaseConfig();
  config.gain = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config = BaseConfig();
  config.min_theta = 10.0;
  config.max_theta = 1.0;
  EXPECT_FALSE(config.Validate().ok());
  config = BaseConfig();
  config.max_step_ratio = 1.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ThetaControllerTest, NoAdjustmentBeforeWindow) {
  ThetaController controller(BaseConfig(), 1.0);
  EXPECT_EQ(controller.Update(5, 100000), 1.0);
  EXPECT_TRUE(controller.adjustments().empty());
}

TEST(ThetaControllerTest, OverBudgetRaisesTheta) {
  // Usage = 50000 bytes / 10 steps = 5000 bytes/step, 5x over the budget
  // => Theta rises (sync less often => less traffic).
  ThetaController controller(BaseConfig(), 1.0);
  const double theta = controller.Update(10, 50000);
  EXPECT_GT(theta, 1.0);
  ASSERT_EQ(controller.adjustments().size(), 1u);
  EXPECT_DOUBLE_EQ(controller.adjustments()[0].observed_bytes_per_step,
                   5000.0);
}

TEST(ThetaControllerTest, UnderBudgetLowersTheta) {
  ThetaController controller(BaseConfig(), 1.0);
  const double theta = controller.Update(10, 100);  // 10 bytes/step
  EXPECT_LT(theta, 1.0);
}

TEST(ThetaControllerTest, OnBudgetKeepsTheta) {
  ThetaController controller(BaseConfig(), 2.0);
  const double theta = controller.Update(10, 10000);  // exactly on budget
  EXPECT_NEAR(theta, 2.0, 1e-12);
}

TEST(ThetaControllerTest, StepRatioClampsAdjustment) {
  ThetaController controller(BaseConfig(), 1.0);
  // 1e9 bytes over 10 steps: raw ratio is enormous; clamp at 4x.
  const double theta = controller.Update(10, 1000000000ULL);
  EXPECT_DOUBLE_EQ(theta, 4.0);
}

TEST(ThetaControllerTest, AbsoluteBoundsHold) {
  auto config = BaseConfig();
  config.max_theta = 2.5;
  ThetaController controller(config, 1.0);
  controller.Update(10, 1000000000ULL);
  EXPECT_LE(controller.theta(), 2.5);
  ThetaController low(config, 1e-5);
  low.Update(10, 0);
  EXPECT_GE(low.theta(), config.min_theta);
}

TEST(ThetaControllerTest, ConvergesTowardBudgetUnderProportionalModel) {
  // Toy closed loop: bytes/step inversely proportional to Theta
  // (usage = C / theta). Fixed point: theta* = C / target.
  auto config = BaseConfig();
  config.gain = 0.5;
  ThetaController controller(config, 0.1);
  const double c = 5000.0;  // usage at theta=1
  uint64_t cumulative = 0;
  size_t step = 0;
  for (int round = 0; round < 60; ++round) {
    const double usage = c / controller.theta();
    cumulative += static_cast<uint64_t>(usage * 10);
    step += 10;
    controller.Update(step, cumulative);
  }
  // theta* = 5000 / 1000 = 5.
  EXPECT_NEAR(controller.theta(), 5.0, 1.0);
}

TEST(ThetaControllerTest, WindowsAreDisjoint) {
  ThetaController controller(BaseConfig(), 1.0);
  controller.Update(10, 10000);
  controller.Update(12, 11000);  // inside window: ignored
  controller.Update(20, 20000);  // second full window: 1000 bytes/step
  ASSERT_EQ(controller.adjustments().size(), 2u);
  EXPECT_DOUBLE_EQ(controller.adjustments()[1].observed_bytes_per_step,
                   1000.0);
}

}  // namespace
}  // namespace fedra
