// Unit + property tests for Tensor and the dense-compute kernels (GEMM,
// conv, pooling). GEMM is checked against a naive reference across all
// transpose combinations; conv/pool backward passes are checked against
// central finite differences.

#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace fedra {
namespace {

// ----------------------------------------------------------------- Tensor

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  for (size_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(t[i], 0.0f);
  }
}

TEST(TensorTest, ShapeAccessors) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.rank(), 4);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(3), 5);
  EXPECT_EQ(t.ShapeString(), "[2, 3, 4, 5]");
}

TEST(TensorTest, At2dRowMajor) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  EXPECT_EQ(t.at(1, 2), 7.0f);
}

TEST(TensorTest, At4dNchw) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[t.numel() - 1], 9.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 6});
  for (size_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(i);
  }
  Tensor r = t.Reshaped({3, 4});
  EXPECT_EQ(r.rank(), 2);
  EXPECT_EQ(r.dim(0), 3);
  for (size_t i = 0; i < r.numel(); ++i) {
    EXPECT_EQ(r[i], static_cast<float>(i));
  }
}

TEST(TensorDeathTest, BadReshapeDies) {
  Tensor t({2, 3});
  EXPECT_DEATH(t.Reshaped({4, 2}), "numel");
}

TEST(TensorDeathTest, OutOfRangeIndexDies) {
  Tensor t({2, 3});
  EXPECT_DEATH(t.at(2, 0), "out of");
}

TEST(TensorDeathTest, NonPositiveDimDies) {
  EXPECT_DEATH(Tensor({2, 0}), "positive");
}

TEST(TensorTest, FullFillsValue) {
  Tensor t = Tensor::Full({3}, 2.5f);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(t[i], 2.5f);
  }
}

TEST(TensorTest, SameShape) {
  EXPECT_TRUE(Tensor({2, 3}).SameShape(Tensor({2, 3})));
  EXPECT_FALSE(Tensor({2, 3}).SameShape(Tensor({3, 2})));
}

// ------------------------------------------------------------------- GEMM

/// Naive reference: C = alpha*op(A)*op(B) + beta*C.
void GemmReference(bool trans_a, bool trans_b, int m, int n, int k,
                   float alpha, const std::vector<float>& a,
                   const std::vector<float>& b, float beta,
                   std::vector<float>* c) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) {
        const float av = trans_a ? a[static_cast<size_t>(p) * m + i]
                                 : a[static_cast<size_t>(i) * k + p];
        const float bv = trans_b ? b[static_cast<size_t>(j) * k + p]
                                 : b[static_cast<size_t>(p) * n + j];
        acc += static_cast<double>(av) * bv;
      }
      float& out = (*c)[static_cast<size_t>(i) * n + j];
      out = alpha * static_cast<float>(acc) + beta * out;
    }
  }
}

class GemmParamTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, int, int, int>> {
};

TEST_P(GemmParamTest, MatchesReference) {
  const auto [trans_a, trans_b, m, n, k] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 73 + n * 7 + k + trans_a * 2 + trans_b));
  std::vector<float> a(static_cast<size_t>(m) * k);
  std::vector<float> b(static_cast<size_t>(k) * n);
  std::vector<float> c(static_cast<size_t>(m) * n);
  for (auto& x : a) {
    x = rng.NextUniform(-1.0f, 1.0f);
  }
  for (auto& x : b) {
    x = rng.NextUniform(-1.0f, 1.0f);
  }
  for (auto& x : c) {
    x = rng.NextUniform(-1.0f, 1.0f);
  }
  std::vector<float> expected = c;
  GemmReference(trans_a, trans_b, m, n, k, 0.7f, a, b, 0.3f, &expected);
  ops::Gemm(trans_a, trans_b, m, n, k, 0.7f, a.data(), b.data(), 0.3f,
            c.data());
  for (size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], expected[i], 1e-4) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposesAndShapes, GemmParamTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(1, 3, 8), ::testing::Values(1, 5),
                       ::testing::Values(1, 4, 9)));

TEST(GemmTest, BetaZeroOverwritesGarbage) {
  std::vector<float> a = {1.0f, 2.0f};
  std::vector<float> b = {3.0f, 4.0f};
  std::vector<float> c = {std::nanf(""), std::nanf("")};
  // [1;2] * [3 4] => 1x... use m=2, n=1? Keep m=1,n=1,k=2: c = 1*3+2*4 = 11.
  ops::Gemm(false, false, 1, 1, 2, 1.0f, a.data(), b.data(), 0.0f, c.data());
  EXPECT_FLOAT_EQ(c[0], 3.0f + 8.0f);
}

// ------------------------------------------------------------ Convolution

ops::Conv2dGeometry MakeGeometry(int batch, int ic, int hw, int oc, int k,
                                 int stride, int pad) {
  ops::Conv2dGeometry g;
  g.batch = batch;
  g.in_channels = ic;
  g.in_h = hw;
  g.in_w = hw;
  g.out_channels = oc;
  g.kernel = k;
  g.stride = stride;
  g.pad = pad;
  return g;
}

TEST(Conv2dTest, IdentityKernelReproducesInput) {
  // 1x1 kernel with weight 1 and zero bias is the identity.
  auto g = MakeGeometry(1, 1, 4, 1, 1, 1, 0);
  std::vector<float> input(16);
  for (size_t i = 0; i < 16; ++i) {
    input[i] = static_cast<float>(i);
  }
  std::vector<float> weight = {1.0f};
  std::vector<float> output(16, -1.0f);
  ops::Conv2dForward(g, input.data(), weight.data(), nullptr, output.data());
  EXPECT_EQ(input, output);
}

TEST(Conv2dTest, KnownSmallCase) {
  // 2x2 input, 2x2 kernel, no pad: single output = sum(input * kernel).
  auto g = MakeGeometry(1, 1, 2, 1, 2, 1, 0);
  std::vector<float> input = {1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> weight = {10.0f, 20.0f, 30.0f, 40.0f};
  std::vector<float> bias = {5.0f};
  std::vector<float> output(1);
  ops::Conv2dForward(g, input.data(), weight.data(), bias.data(),
                     output.data());
  EXPECT_FLOAT_EQ(output[0], 10.0f + 40.0f + 90.0f + 160.0f + 5.0f);
}

TEST(Conv2dTest, PaddingProducesSameSize) {
  auto g = MakeGeometry(2, 3, 5, 4, 3, 1, 1);
  EXPECT_EQ(g.out_h(), 5);
  EXPECT_EQ(g.out_w(), 5);
}

TEST(Conv2dTest, StrideHalvesOutput) {
  auto g = MakeGeometry(1, 1, 8, 1, 2, 2, 0);
  EXPECT_EQ(g.out_h(), 4);
}

/// Finite-difference check of Conv2dBackward for all three gradients.
class ConvBackwardTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(ConvBackwardTest, MatchesFiniteDifferences) {
  const auto [kernel, stride, pad, channels] = GetParam();
  auto g = MakeGeometry(2, channels, 6, 3, kernel, stride, pad);
  if (g.out_h() <= 0) {
    GTEST_SKIP() << "empty output for this combination";
  }
  Rng rng(99);
  const size_t in_size = static_cast<size_t>(g.batch) * g.in_channels *
                         g.in_h * g.in_w;
  const size_t w_size = static_cast<size_t>(g.out_channels) *
                        g.in_channels * g.kernel * g.kernel;
  const size_t out_size = static_cast<size_t>(g.batch) * g.out_channels *
                          g.out_h() * g.out_w();
  std::vector<float> input(in_size);
  std::vector<float> weight(w_size);
  std::vector<float> bias(static_cast<size_t>(g.out_channels));
  std::vector<float> loss_weights(out_size);
  for (auto* v : {&input, &weight, &bias, &loss_weights}) {
    for (auto& x : *v) {
      x = rng.NextUniform(-1.0f, 1.0f);
    }
  }
  auto loss = [&](const std::vector<float>& in,
                  const std::vector<float>& w, const std::vector<float>& b) {
    std::vector<float> out(out_size);
    ops::Conv2dForward(g, in.data(), w.data(), b.data(), out.data());
    double acc = 0.0;
    for (size_t i = 0; i < out_size; ++i) {
      acc += static_cast<double>(out[i]) * loss_weights[i];
    }
    return acc;
  };
  std::vector<float> grad_in(in_size, 0.0f);
  std::vector<float> grad_w(w_size, 0.0f);
  std::vector<float> grad_b(static_cast<size_t>(g.out_channels), 0.0f);
  ops::Conv2dBackward(g, input.data(), weight.data(), loss_weights.data(),
                      grad_in.data(), grad_w.data(), grad_b.data());
  const double eps = 1e-3;
  // Probe a handful of coordinates of each gradient.
  for (int probe = 0; probe < 8; ++probe) {
    const size_t i = rng.NextBounded(in_size);
    auto in2 = input;
    in2[i] += static_cast<float>(eps);
    const double hi = loss(in2, weight, bias);
    in2[i] -= static_cast<float>(2 * eps);
    const double lo = loss(in2, weight, bias);
    EXPECT_NEAR(grad_in[i], (hi - lo) / (2 * eps), 5e-2) << "input grad";
  }
  for (int probe = 0; probe < 8; ++probe) {
    const size_t i = rng.NextBounded(w_size);
    auto w2 = weight;
    w2[i] += static_cast<float>(eps);
    const double hi = loss(input, w2, bias);
    w2[i] -= static_cast<float>(2 * eps);
    const double lo = loss(input, w2, bias);
    EXPECT_NEAR(grad_w[i], (hi - lo) / (2 * eps), 5e-2) << "weight grad";
  }
  for (size_t i = 0; i < bias.size(); ++i) {
    auto b2 = bias;
    b2[i] += static_cast<float>(eps);
    const double hi = loss(input, weight, b2);
    b2[i] -= static_cast<float>(2 * eps);
    const double lo = loss(input, weight, b2);
    EXPECT_NEAR(grad_b[i], (hi - lo) / (2 * eps), 5e-2) << "bias grad";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvBackwardTest,
    ::testing::Values(std::make_tuple(3, 1, 1, 2),
                      std::make_tuple(3, 1, 0, 1),
                      std::make_tuple(5, 1, 2, 2),
                      std::make_tuple(2, 2, 0, 3),
                      std::make_tuple(1, 1, 0, 2)));

TEST(DepthwiseConvTest, MatchesPerChannelDenseConv) {
  // Depthwise conv == per-channel standard conv with diagonal weight.
  auto g = MakeGeometry(1, 2, 4, 2, 3, 1, 1);
  Rng rng(5);
  std::vector<float> input(static_cast<size_t>(g.batch) * 2 * 16);
  std::vector<float> dw_weight(2 * 9);
  for (auto& x : input) {
    x = rng.NextUniform(-1.0f, 1.0f);
  }
  for (auto& x : dw_weight) {
    x = rng.NextUniform(-1.0f, 1.0f);
  }
  std::vector<float> dw_out(input.size());
  ops::DepthwiseConv2dForward(g, input.data(), dw_weight.data(), nullptr,
                              dw_out.data());
  // Dense weight: [oc=2, ic=2, 3, 3] with zero cross-channel blocks.
  std::vector<float> dense_weight(2 * 2 * 9, 0.0f);
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 9; ++i) {
      dense_weight[(static_cast<size_t>(c) * 2 + c) * 9 +
                   static_cast<size_t>(i)] = dw_weight[c * 9 + i];
    }
  }
  std::vector<float> dense_out(input.size());
  ops::Conv2dForward(g, input.data(), dense_weight.data(), nullptr,
                     dense_out.data());
  for (size_t i = 0; i < dw_out.size(); ++i) {
    EXPECT_NEAR(dw_out[i], dense_out[i], 1e-5);
  }
}

TEST(DepthwiseConvTest, BackwardMatchesFiniteDifferences) {
  auto g = MakeGeometry(1, 2, 5, 2, 3, 1, 1);
  Rng rng(6);
  const size_t in_size = 2 * 25;
  const size_t w_size = 2 * 9;
  const size_t out_size = 2 * 25;
  std::vector<float> input(in_size);
  std::vector<float> weight(w_size);
  std::vector<float> loss_weights(out_size);
  for (auto* v : {&input, &weight, &loss_weights}) {
    for (auto& x : *v) {
      x = rng.NextUniform(-1.0f, 1.0f);
    }
  }
  auto loss = [&](const std::vector<float>& in,
                  const std::vector<float>& w) {
    std::vector<float> out(out_size);
    ops::DepthwiseConv2dForward(g, in.data(), w.data(), nullptr, out.data());
    double acc = 0.0;
    for (size_t i = 0; i < out_size; ++i) {
      acc += static_cast<double>(out[i]) * loss_weights[i];
    }
    return acc;
  };
  std::vector<float> grad_in(in_size, 0.0f);
  std::vector<float> grad_w(w_size, 0.0f);
  ops::DepthwiseConv2dBackward(g, input.data(), weight.data(),
                               loss_weights.data(), grad_in.data(),
                               grad_w.data(), nullptr);
  const double eps = 1e-3;
  for (int probe = 0; probe < 10; ++probe) {
    const size_t i = rng.NextBounded(in_size);
    auto in2 = input;
    in2[i] += static_cast<float>(eps);
    const double hi = loss(in2, weight);
    in2[i] -= static_cast<float>(2 * eps);
    const double lo = loss(in2, weight);
    EXPECT_NEAR(grad_in[i], (hi - lo) / (2 * eps), 5e-2);
  }
  for (int probe = 0; probe < 10; ++probe) {
    const size_t i = rng.NextBounded(w_size);
    auto w2 = weight;
    w2[i] += static_cast<float>(eps);
    const double hi = loss(input, w2);
    w2[i] -= static_cast<float>(2 * eps);
    const double lo = loss(input, w2);
    EXPECT_NEAR(grad_w[i], (hi - lo) / (2 * eps), 5e-2);
  }
}

// ---------------------------------------------------------------- Pooling

TEST(MaxPoolTest, SelectsWindowMaximum) {
  auto g = MakeGeometry(1, 1, 4, 1, 2, 2, 0);
  std::vector<float> input = {1, 5, 2, 0,  //
                              3, 4, 1, 1,  //
                              0, 0, 9, 8,  //
                              0, 0, 7, 6};
  std::vector<float> output(4);
  std::vector<int> argmax(4);
  ops::MaxPool2dForward(g, input.data(), output.data(), argmax.data());
  EXPECT_FLOAT_EQ(output[0], 5.0f);
  EXPECT_FLOAT_EQ(output[1], 2.0f);
  EXPECT_FLOAT_EQ(output[2], 0.0f);
  EXPECT_FLOAT_EQ(output[3], 9.0f);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  auto g = MakeGeometry(1, 1, 4, 1, 2, 2, 0);
  std::vector<float> input = {1, 5, 2, 0, 3, 4, 1, 1,
                              0, 0, 9, 8, 0, 0, 7, 6};
  std::vector<float> output(4);
  std::vector<int> argmax(4);
  ops::MaxPool2dForward(g, input.data(), output.data(), argmax.data());
  std::vector<float> grad_out = {1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> grad_in(16, 0.0f);
  ops::MaxPool2dBackward(g, grad_out.data(), argmax.data(), grad_in.data());
  EXPECT_FLOAT_EQ(grad_in[1], 1.0f);   // the "5"
  EXPECT_FLOAT_EQ(grad_in[2], 2.0f);   // the "2"
  EXPECT_FLOAT_EQ(grad_in[10], 4.0f);  // the "9"
  double total = 0.0;
  for (float x : grad_in) {
    total += x;
  }
  EXPECT_DOUBLE_EQ(total, 10.0);  // gradient mass preserved
}

TEST(AvgPoolTest, AveragesWindow) {
  auto g = MakeGeometry(1, 1, 4, 1, 2, 2, 0);
  std::vector<float> input = {1, 3, 0, 0, 5, 7, 0, 0,
                              0, 0, 2, 2, 0, 0, 2, 2};
  std::vector<float> output(4);
  ops::AvgPool2dForward(g, input.data(), output.data());
  EXPECT_FLOAT_EQ(output[0], 4.0f);
  EXPECT_FLOAT_EQ(output[3], 2.0f);
}

TEST(AvgPoolTest, BackwardSpreadsEvenly) {
  auto g = MakeGeometry(1, 1, 4, 1, 2, 2, 0);
  std::vector<float> grad_out = {4.0f, 0.0f, 0.0f, 8.0f};
  std::vector<float> grad_in(16, 0.0f);
  ops::AvgPool2dBackward(g, grad_out.data(), grad_in.data());
  EXPECT_FLOAT_EQ(grad_in[0], 1.0f);
  EXPECT_FLOAT_EQ(grad_in[5], 1.0f);
  EXPECT_FLOAT_EQ(grad_in[10], 2.0f);
  EXPECT_FLOAT_EQ(grad_in[15], 2.0f);
}

TEST(GlobalAvgPoolTest, ForwardAndBackward) {
  std::vector<float> input = {1, 2, 3, 4,   // n0 c0
                              10, 20, 30, 40};  // n0 c1
  std::vector<float> output(2);
  ops::GlobalAvgPoolForward(1, 2, 2, 2, input.data(), output.data());
  EXPECT_FLOAT_EQ(output[0], 2.5f);
  EXPECT_FLOAT_EQ(output[1], 25.0f);
  std::vector<float> grad_out = {4.0f, 8.0f};
  std::vector<float> grad_in(8, 0.0f);
  ops::GlobalAvgPoolBackward(1, 2, 2, 2, grad_out.data(), grad_in.data());
  for (int i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(grad_in[static_cast<size_t>(i)], 1.0f);
    EXPECT_FLOAT_EQ(grad_in[static_cast<size_t>(4 + i)], 2.0f);
  }
}

}  // namespace
}  // namespace fedra
