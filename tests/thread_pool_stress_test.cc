// Stress and regression tests for the work-stealing ThreadPool.
//
// The central regression: the old pool had one pool-wide in-flight counter,
// so Wait() inside ParallelFor blocked until *every* queued task finished —
// two independent callers on different threads each waited for the other's
// chunks. The work-stealing pool gives every ParallelFor call its own
// completion token, so a caller returns as soon as its own indices complete
// even while another caller's tasks are still running.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace fedra {
namespace {

using namespace std::chrono_literals;

// Spin-waits (with yields) until pred() holds or `timeout` elapses; returns
// whether pred() held.
template <typename Pred>
bool WaitFor(Pred pred, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
    std::this_thread::yield();
  }
  return true;
}

TEST(ThreadPoolStressTest, ConcurrentCallersOnlyWaitForTheirOwnChunks) {
  ThreadPool pool(4);

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> slow_started{0};
  std::atomic<bool> slow_done{false};
  std::atomic<bool> fast_done{false};

  // Caller A: two chunks that block on the gate (each pins a thread — one
  // pool worker plus the helping caller).
  std::thread slow_caller([&] {
    pool.ParallelFor(2, [&](size_t) {
      ++slow_started;
      std::unique_lock<std::mutex> lock(gate_mutex);
      gate_cv.wait(lock, [&] { return gate_open; });
    });
    slow_done.store(true);
  });
  ASSERT_TRUE(WaitFor([&] { return slow_started.load() == 2; }, 5000ms))
      << "slow caller's chunks never started";

  // Caller B: trivial chunks. With the old pool-wide counter its Wait()
  // would also wait out caller A's blocked tasks; with per-call tokens it
  // must return promptly while A is still blocked.
  std::thread fast_caller([&] {
    pool.ParallelFor(2, [](size_t) {});
    fast_done.store(true);
  });
  EXPECT_TRUE(WaitFor([&] { return fast_done.load(); }, 5000ms))
      << "independent ParallelFor was over-blocked by another caller";
  EXPECT_FALSE(slow_done.load());

  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  slow_caller.join();
  fast_caller.join();
  EXPECT_TRUE(slow_done.load());
}

TEST(ThreadPoolStressTest, ManyConcurrentCallersCoverAllIndices) {
  ThreadPool pool(4);
  constexpr int kCallers = 8;
  constexpr int kIters = 25;
  constexpr size_t kN = 257;  // not a multiple of any grain below

  std::vector<std::thread> callers;
  std::vector<std::vector<int>> hits(kCallers, std::vector<int>(kN, 0));
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      for (int iter = 0; iter < kIters; ++iter) {
        // Vary the grain so chunk boundaries differ between callers.
        pool.ParallelFor(
            kN, [&, t](size_t i) { ++hits[static_cast<size_t>(t)][i]; },
            /*grain=*/static_cast<size_t>(1 + (t % 5)));
      }
    });
  }
  for (auto& caller : callers) {
    caller.join();
  }
  for (int t = 0; t < kCallers; ++t) {
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[static_cast<size_t>(t)][i], kIters)
          << "caller " << t << " index " << i;
    }
  }
}

TEST(ThreadPoolStressTest, ConcurrentRangeCallsAreDisjointAndComplete) {
  ThreadPool pool(3);
  constexpr int kCallers = 4;
  constexpr size_t kN = 1003;

  std::vector<std::thread> callers;
  std::vector<std::vector<int>> hits(kCallers, std::vector<int>(kN, 0));
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      pool.ParallelForRange(kN, /*grain=*/17,
                            [&, t](size_t begin, size_t end) {
                              for (size_t i = begin; i < end; ++i) {
                                ++hits[static_cast<size_t>(t)][i];
                              }
                            });
    });
  }
  for (auto& caller : callers) {
    caller.join();
  }
  for (int t = 0; t < kCallers; ++t) {
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[static_cast<size_t>(t)][i], 1)
          << "caller " << t << " index " << i;
    }
  }
}

TEST(ThreadPoolStressTest, NestedCallFromWorkerCoversAllIndices) {
  // Nested ParallelFor from a pool worker used to run fully inline; it now
  // parks helper runners on the worker's own deque. Either way every index
  // must execute exactly once per call, with no deadlock under deep
  // nesting.
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(16, [&](size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);

  std::atomic<int> deep_total{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.ParallelFor(4, [&](size_t) {
      pool.ParallelFor(8, [&](size_t) { ++deep_total; });
    });
  });
  EXPECT_EQ(deep_total.load(), 4 * 4 * 8);
}

TEST(ThreadPoolStressTest, NestedChunksCanBeStolenByIdlePeers) {
  // Regression for the ROADMAP scheduler gap: a nested ParallelFor called
  // from a pool worker pushes its chunk runners onto that worker's own
  // deque, so idle peers can steal them. Two nested chunks rendezvous —
  // each blocks until both have started, which is only possible when a
  // second thread picks up the stolen runner. The fully-inline behavior
  // this replaces would time the rendezvous out.
  ThreadPool pool(4);
  std::mutex m;
  std::condition_variable cv;
  int arrived = 0;
  std::atomic<bool> rendezvous_ok{true};
  pool.Schedule([&] {
    // Runs on a pool worker, so the inner call takes the nested path.
    pool.ParallelFor(2, [&](size_t) {
      std::unique_lock<std::mutex> lock(m);
      ++arrived;
      cv.notify_all();
      if (!cv.wait_for(lock, 5000ms, [&] { return arrived == 2; })) {
        rendezvous_ok.store(false);
      }
    });
  });
  pool.Wait();
  EXPECT_TRUE(rendezvous_ok.load())
      << "nested chunks were not stealable by idle workers";
  EXPECT_EQ(arrived, 2);
}

TEST(ThreadPoolStressTest, SleepWakeHandoffNeverLosesAWakeup) {
  // Regression for the PushTask/WorkerLoop sleep handoff (the
  // atomic-then-sleep window): a worker that found every deque empty
  // re-checks `queued_` under sleep_mutex_ before sleeping, and every
  // pusher increments `queued_` *before* toggling sleep_mutex_ and
  // notifying. If either side of that protocol regressed, a push landing
  // exactly between a worker's failed TryPop and its wait() would be lost
  // and this ping-pong — one task at a time, workers asleep in between —
  // would hang until the ctest timeout. 2000 cycles cross the window far
  // more often than the one-task-per-burst pattern of real callers.
  ThreadPool pool(2);
  for (int cycle = 0; cycle < 2000; ++cycle) {
    std::atomic<bool> ran{false};
    pool.Schedule([&] { ran.store(true, std::memory_order_release); });
    pool.Wait();
    ASSERT_TRUE(ran.load(std::memory_order_acquire)) << "cycle " << cycle;
  }
}

TEST(ThreadPoolStressTest, SleepWakeHandoffSurvivesConcurrentPushers) {
  // Same window, multi-producer flavor: several threads each push one task
  // and Wait() while workers oscillate between sleeping and draining.
  // notify_one must always land on (or before) a sleeper that can make
  // progress; a lost wakeup deadlocks some producer's Wait().
  ThreadPool pool(2);
  constexpr int kProducers = 3;
  constexpr int kCycles = 300;
  std::atomic<int> executed{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&] {
      for (int cycle = 0; cycle < kCycles; ++cycle) {
        pool.Schedule(
            [&] { executed.fetch_add(1, std::memory_order_relaxed); });
        pool.Wait();
      }
    });
  }
  for (auto& producer : producers) {
    producer.join();
  }
  pool.Wait();
  EXPECT_EQ(executed.load(), kProducers * kCycles);
}

TEST(ThreadPoolStressTest, ParallelFor2dCoversTheGrid) {
  ThreadPool pool(4);
  constexpr size_t kRows = 13;
  constexpr size_t kCols = 29;
  std::vector<std::atomic<int>> hits(kRows * kCols);
  for (auto& h : hits) {
    h.store(0);
  }
  pool.ParallelFor2d(kRows, kCols, [&](size_t r, size_t c) {
    ++hits[r * kCols + c];
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "tile " << i;
  }
}

TEST(ThreadPoolStressTest, ScheduleFromManyThreadsThenWait) {
  ThreadPool pool(4);
  constexpr int kProducers = 4;
  constexpr int kTasksEach = 100;
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < kTasksEach; ++i) {
        pool.Schedule([&] { ++counter; });
      }
    });
  }
  for (auto& producer : producers) {
    producer.join();
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), kProducers * kTasksEach);
}

TEST(ThreadPoolStressTest, ParallelForWhileScheduledTasksAreBlocked) {
  // Schedule()d work pinning some workers must not stall an independent
  // ParallelFor: the caller helps, and per-call tokens ignore Schedule()'s
  // in-flight count entirely.
  ThreadPool pool(3);
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<int> blocked{0};
  for (int i = 0; i < 2; ++i) {
    pool.Schedule([&] {
      ++blocked;
      std::unique_lock<std::mutex> lock(gate_mutex);
      gate_cv.wait(lock, [&] { return gate_open; });
    });
  }
  ASSERT_TRUE(WaitFor([&] { return blocked.load() == 2; }, 5000ms));

  std::atomic<int> counter{0};
  pool.ParallelFor(64, [&](size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 64);

  {
    std::lock_guard<std::mutex> lock(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  pool.Wait();
}

}  // namespace
}  // namespace fedra
