// Integration tests of the distributed trainer with every sync policy:
// worker consistency, the FDA Round Invariant, communication accounting,
// accuracy targets, determinism, and the paper's headline ordering
// (FDA communicates orders of magnitude less than Synchronous).

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "core/fda_policy.h"
#include "data/synth.h"
#include "nn/zoo.h"

namespace fedra {
namespace {

SynthImageData SmallMnistLike() {
  SynthImageConfig config = MnistLikeConfig();
  config.num_train = 512;
  config.num_test = 256;
  config.image_size = 16;
  auto data = GenerateSynthImages(config);
  FEDRA_CHECK(data.ok());
  return std::move(data).value();
}

ModelFactory SmallMlpFactory() {
  return [] { return zoo::Mlp(16 * 16, {24}, 10); };
}

TrainerConfig BaseConfig(int num_workers) {
  TrainerConfig config;
  config.num_workers = num_workers;
  config.batch_size = 16;
  config.local_optimizer = OptimizerConfig::Adam(0.002f);
  config.seed = 11;
  config.max_steps = 120;
  config.eval_every_steps = 30;
  config.eval_subset = 128;
  return config;
}

TEST(TrainerTest, SynchronousKeepsWorkersIdentical) {
  SynthImageData data = SmallMnistLike();
  DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                             BaseConfig(3));
  SynchronousPolicy policy;
  auto result = trainer.Run(&policy);
  ASSERT_TRUE(result.ok()) << result.status();
  // Every step synchronizes: sync count == steps.
  EXPECT_EQ(result->total_syncs, static_cast<uint64_t>(result->total_steps));
  EXPECT_EQ(result->comm.model_sync_count,
            static_cast<uint64_t>(result->total_steps));
  EXPECT_EQ(result->comm.bytes_local_state, 0u);
}

TEST(TrainerTest, SynchronousCommMatchesFormula) {
  SynthImageData data = SmallMnistLike();
  auto factory = SmallMlpFactory();
  const size_t dim = factory()->num_params();
  TrainerConfig config = BaseConfig(4);
  config.max_steps = 50;
  DistributedTrainer trainer(factory, data.train, data.test, config);
  SynchronousPolicy policy;
  auto result = trainer.Run(&policy);
  ASSERT_TRUE(result.ok());
  // Flat accounting: steps * K * d * 4 bytes.
  EXPECT_EQ(result->comm.bytes_total,
            50ull * 4ull * dim * sizeof(float));
}

TEST(TrainerTest, LocalSgdSyncsEveryTauSteps) {
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = BaseConfig(3);
  config.max_steps = 60;
  DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                             config);
  LocalSgdPolicy policy(TauSchedule::Fixed(10));
  auto result = trainer.Run(&policy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_syncs, 6u);
}

TEST(TrainerTest, DecayingTauSyncsMoreOverTime) {
  TauSchedule decaying = TauSchedule::Decaying(32, 0.5);
  EXPECT_EQ(decaying.TauForRound(0), 32u);
  EXPECT_EQ(decaying.TauForRound(1), 16u);
  EXPECT_EQ(decaying.TauForRound(5), 1u);
  TauSchedule increasing = TauSchedule::Increasing(4, 2.0);
  EXPECT_EQ(increasing.TauForRound(0), 4u);
  EXPECT_EQ(increasing.TauForRound(2), 16u);
}

TEST(TrainerTest, FdaStateTrafficIsCheapAndSyncsAreRare) {
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = BaseConfig(4);
  config.max_steps = 80;
  DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                             config);
  auto policy = MakeSyncPolicy(AlgorithmConfig::LinearFda(/*theta=*/1e9),
                               trainer.model_dim());
  ASSERT_TRUE(policy.ok());
  auto result = trainer.Run(policy->get());
  ASSERT_TRUE(result.ok());
  // Huge theta: no syncs at all; only per-step state traffic (2 floats).
  EXPECT_EQ(result->total_syncs, 0u);
  EXPECT_EQ(result->comm.bytes_model_sync, 0u);
  EXPECT_EQ(result->comm.bytes_local_state,
            80ull * 4ull * 2ull * sizeof(float));
}

TEST(TrainerTest, FdaThetaZeroSyncsEveryStep) {
  // Paper footnote 3: Synchronous == FDA with Theta = 0 (plus state cost).
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = BaseConfig(3);
  config.max_steps = 40;
  DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                             config);
  auto policy = MakeSyncPolicy(AlgorithmConfig::LinearFda(0.0),
                               trainer.model_dim());
  ASSERT_TRUE(policy.ok());
  auto result = trainer.Run(policy->get());
  ASSERT_TRUE(result.ok());
  // Every step the variance exceeds 0 (models move apart) => sync.
  EXPECT_GE(result->total_syncs, 38u);
}

TEST(TrainerTest, RoundInvariantHoldsWithExactMonitor) {
  // With the exact (oracle) monitor, FDA's estimate history must never
  // leave the variance above Theta *after* the sync decision: whenever the
  // estimate exceeded Theta a sync followed immediately, so the recorded
  // estimate at any non-sync step is <= Theta.
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = BaseConfig(4);
  config.max_steps = 60;
  DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                             config);
  auto monitor = MakeVarianceMonitor(
      [] {
        MonitorConfig c;
        c.kind = MonitorKind::kExact;
        return c;
      }(),
      trainer.model_dim());
  ASSERT_TRUE(monitor.ok());
  const double theta = 0.05;
  FdaSyncPolicy policy(std::move(monitor).value(), theta);
  policy.set_record_estimates(true);
  auto result = trainer.Run(&policy);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->total_syncs, 0u);
  // The RI: Var <= Theta is preserved across training in the sense that
  // every estimate above Theta triggered a sync (variance drops to 0).
  // Count steps where the estimate stayed above Theta with no sync: zero
  // by construction; instead verify estimates were actually monitored.
  EXPECT_EQ(policy.estimate_history().size(), 60u);
  for (double h : policy.estimate_history()) {
    EXPECT_GE(h, -1e-6);  // variance estimates are non-negative
  }
}

TEST(TrainerTest, FedOptSyncsOncePerLocalEpoch) {
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = BaseConfig(4);
  // 512 train / 4 workers = 128 per worker; batch 16 => 8 steps/epoch.
  config.max_steps = 40;
  DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                             config);
  auto policy = MakeSyncPolicy(AlgorithmConfig::FedAvg(1),
                               trainer.model_dim());
  ASSERT_TRUE(policy.ok());
  auto result = trainer.Run(policy->get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_syncs, 5u);  // 40 steps / 8 per round
}

TEST(TrainerTest, FedAvgEqualsPlainAveragingOnSyncStep) {
  // After a FedAvg round (server SGD lr=1), the global model equals the
  // plain average of the worker models — i.e., equals what LocalSGD with
  // tau = steps_per_epoch produces at the same step.
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = BaseConfig(2);
  config.max_steps = 16;
  auto run = [&](AlgorithmConfig algo) {
    DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                               config);
    auto policy = MakeSyncPolicy(algo, trainer.model_dim());
    FEDRA_CHECK(policy.ok());
    auto result = trainer.Run(policy->get());
    FEDRA_CHECK(result.ok());
    return result->final_test_accuracy;
  };
  // 512/2/16 = 16 steps per epoch => both sync exactly once, at step 16.
  const double fedavg = run(AlgorithmConfig::FedAvg(1));
  const double local_sgd =
      run(AlgorithmConfig::LocalSgd(TauSchedule::Fixed(16)));
  EXPECT_NEAR(fedavg, local_sgd, 1e-9);
}

TEST(TrainerTest, DeterministicAcrossRuns) {
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = BaseConfig(3);
  config.max_steps = 30;
  auto run_once = [&] {
    DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                               config);
    auto policy = MakeSyncPolicy(AlgorithmConfig::SketchFda(0.5),
                                 trainer.model_dim());
    FEDRA_CHECK(policy.ok());
    auto result = trainer.Run(policy->get());
    FEDRA_CHECK(result.ok());
    return *result;
  };
  TrainResult a = run_once();
  TrainResult b = run_once();
  EXPECT_EQ(a.total_syncs, b.total_syncs);
  EXPECT_EQ(a.comm.bytes_total, b.comm.bytes_total);
  EXPECT_EQ(a.final_test_accuracy, b.final_test_accuracy);
}

TEST(TrainerTest, ParallelWorkersMatchSequential) {
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = BaseConfig(4);
  config.max_steps = 20;
  auto run_with = [&](bool parallel) {
    TrainerConfig c = config;
    c.parallel_workers = parallel;
    DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test, c);
    auto policy = MakeSyncPolicy(AlgorithmConfig::LinearFda(0.5),
                                 trainer.model_dim());
    FEDRA_CHECK(policy.ok());
    auto result = trainer.Run(policy->get());
    FEDRA_CHECK(result.ok());
    return *result;
  };
  TrainResult sequential = run_with(false);
  TrainResult parallel = run_with(true);
  EXPECT_EQ(sequential.total_syncs, parallel.total_syncs);
  EXPECT_EQ(sequential.final_test_accuracy, parallel.final_test_accuracy);
}

TEST(TrainerTest, ReachesAccuracyTargetAndStops) {
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = BaseConfig(2);
  config.accuracy_target = 0.5;  // easy target on the MNIST-like task
  config.max_steps = 600;
  config.eval_every_steps = 25;
  DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                             config);
  SynchronousPolicy policy;
  auto result = trainer.Run(&policy);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->reached_target);
  EXPECT_LT(result->steps_to_target, 600u);
  EXPECT_GT(result->final_test_accuracy, 0.45);
}

TEST(TrainerTest, FdaCommunicatesFarLessThanSynchronousAtSameTarget) {
  // The paper's headline claim, in miniature.
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = BaseConfig(4);
  config.accuracy_target = 0.6;
  config.max_steps = 800;
  config.eval_every_steps = 25;
  auto run = [&](AlgorithmConfig algo) {
    DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                               config);
    auto policy = MakeSyncPolicy(algo, trainer.model_dim());
    FEDRA_CHECK(policy.ok());
    auto result = trainer.Run(policy->get());
    FEDRA_CHECK(result.ok());
    return *result;
  };
  TrainResult synchronous = run(AlgorithmConfig::Synchronous());
  TrainResult fda = run(AlgorithmConfig::LinearFda(0.5));
  ASSERT_TRUE(synchronous.reached_target);
  ASSERT_TRUE(fda.reached_target);
  EXPECT_LT(fda.bytes_to_target, synchronous.bytes_to_target / 5);
}

TEST(TrainerTest, SetInitialParamsIsUsed) {
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = BaseConfig(2);
  config.max_steps = 2;
  config.eval_every_steps = 1;
  auto factory = SmallMlpFactory();
  DistributedTrainer trainer(factory, data.train, data.test, config);
  std::vector<float> zeros(trainer.model_dim(), 0.0f);
  trainer.SetInitialParams(zeros);
  SynchronousPolicy policy;
  auto result = trainer.Run(&policy);
  ASSERT_TRUE(result.ok());
  // From an all-zero MLP, 2 steps cannot reach high accuracy — but mostly
  // this asserts the override path executes without touching random init.
  EXPECT_LE(result->final_test_accuracy, 0.6);
}

TEST(TrainerTest, ValidationErrorsSurface) {
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = BaseConfig(0);  // invalid worker count
  DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                             config);
  SynchronousPolicy policy;
  EXPECT_FALSE(trainer.Run(&policy).ok());
}

TEST(TrainerTest, HistoryIsMonotoneInStepsAndBytes) {
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = BaseConfig(3);
  config.max_steps = 90;
  config.eval_every_steps = 30;
  DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                             config);
  auto policy = MakeSyncPolicy(AlgorithmConfig::SketchFda(0.5),
                               trainer.model_dim());
  ASSERT_TRUE(policy.ok());
  auto result = trainer.Run(policy->get());
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->history.size(), 3u);
  for (size_t i = 1; i < result->history.size(); ++i) {
    EXPECT_GT(result->history[i].step, result->history[i - 1].step);
    EXPECT_GE(result->history[i].bytes, result->history[i - 1].bytes);
    EXPECT_GE(result->history[i].sync_count,
              result->history[i - 1].sync_count);
  }
}

TEST(TrainerTest, HierarchicalTopologyRunsAndSplitsTiers) {
  // 2-cluster edge->cloud topology: the same training run, but every
  // collective is grouped and its time lands in the per-tier breakdown.
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = BaseConfig(4);
  config.max_steps = 40;
  config.hierarchy = HierarchicalNetworkModel::EdgeCloud(2);
  DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                             config);
  auto policy = MakeSyncPolicy(AlgorithmConfig::LinearFda(0.5),
                               trainer.model_dim());
  ASSERT_TRUE(policy.ok());
  auto result = trainer.Run(policy->get());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->total_syncs, 0u);
  EXPECT_GT(result->comm.seconds_intra, 0.0);
  EXPECT_GT(result->comm.seconds_uplink, 0.0);
  // Accumulated separately, so equal only up to rounding of the sums.
  EXPECT_NEAR(result->comm.seconds_intra + result->comm.seconds_uplink,
              result->comm.comm_seconds,
              1e-9 * std::max(1.0, result->comm.comm_seconds));
}

TEST(TrainerTest, PerClusterIntraLinksSlowTheIntraTier) {
  // Heterogeneous intra tier: replacing one cluster's EdgeLan link with a
  // 100x slower one must strictly increase intra-tier seconds while moving
  // exactly the same bytes.
  SynthImageData data = SmallMnistLike();
  auto run_with = [&](bool slow_cluster) {
    TrainerConfig config = BaseConfig(4);
    config.max_steps = 20;
    config.hierarchy = HierarchicalNetworkModel::EdgeCloud(2);
    if (slow_cluster) {
      config.hierarchy.cluster_intra = {config.hierarchy.intra,
                                        config.hierarchy.intra};
      config.hierarchy.cluster_intra[1].bandwidth_bytes_per_sec /= 100.0;
    }
    DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                               config);
    auto policy = MakeSyncPolicy(AlgorithmConfig::LinearFda(0.2),
                                 trainer.model_dim());
    FEDRA_CHECK(policy.ok());
    auto result = trainer.Run(policy->get());
    FEDRA_CHECK(result.ok());
    return *result;
  };
  TrainResult uniform = run_with(false);
  TrainResult hetero = run_with(true);
  ASSERT_GT(uniform.total_syncs, 0u);
  EXPECT_EQ(hetero.comm.bytes_total, uniform.comm.bytes_total);
  EXPECT_GT(hetero.comm.seconds_intra, uniform.comm.seconds_intra);
  EXPECT_DOUBLE_EQ(hetero.comm.seconds_uplink, uniform.comm.seconds_uplink);
}

TEST(TrainerTest, ValidationRejectsMismatchedClusterIntraSize) {
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = BaseConfig(4);
  config.hierarchy = HierarchicalNetworkModel::EdgeCloud(2);
  config.hierarchy.cluster_intra = {config.hierarchy.intra};  // need 2
  DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                             config);
  SynchronousPolicy policy;
  EXPECT_FALSE(trainer.Run(&policy).ok());
}

TEST(TrainerTest, StragglerSlowsCollectivesViaSlowestLink) {
  // With every worker persistently 8x slow (slow_worker_prob = 1), the
  // slowest-link formula must bill strictly more comm seconds than the
  // homogeneous cluster at identical bytes.
  SynthImageData data = SmallMnistLike();
  auto run_with = [&](double slow_prob) {
    TrainerConfig config = BaseConfig(3);
    config.max_steps = 20;
    config.straggler = StragglerModel::None(0.01);
    config.straggler.slow_worker_prob = slow_prob;
    config.straggler.slow_factor = 8.0;
    DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                               config);
    SynchronousPolicy policy;
    auto result = trainer.Run(&policy);
    FEDRA_CHECK(result.ok());
    return *result;
  };
  TrainResult uniform = run_with(0.0);
  TrainResult straggling = run_with(1.0);
  EXPECT_EQ(straggling.comm.bytes_total, uniform.comm.bytes_total);
  EXPECT_GT(straggling.comm.comm_seconds, uniform.comm.comm_seconds);
}

TEST(TrainerTest, HierarchyValidationRejectsTooManyClusters) {
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = BaseConfig(2);
  config.hierarchy = HierarchicalNetworkModel::EdgeCloud(5);
  DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                             config);
  SynchronousPolicy policy;
  EXPECT_FALSE(trainer.Run(&policy).ok());
}

TEST(TrainerTest, FedProxProximalTermPullsWorkersTogether) {
  // The fused proximal kernel must act: with a large mu, worker models stay
  // near the anchor, so drift-based FDA variance stays lower and fewer
  // syncs fire than with mu = 0 at the same theta.
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = BaseConfig(4);
  config.max_steps = 60;
  auto syncs_with_mu = [&](float mu) {
    TrainerConfig c = config;
    c.fedprox_mu = mu;
    DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test, c);
    auto policy = MakeSyncPolicy(AlgorithmConfig::LinearFda(0.02),
                                 trainer.model_dim());
    FEDRA_CHECK(policy.ok());
    auto result = trainer.Run(policy->get());
    FEDRA_CHECK(result.ok());
    return result->total_syncs;
  };
  // Strict: if the proximal term silently became a no-op the counts would
  // be equal and this must fail.
  EXPECT_LT(syncs_with_mu(10.0f), syncs_with_mu(0.0f));
}

TEST(TrainerTest, HeterogeneityConfigsRun) {
  SynthImageData data = SmallMnistLike();
  for (const PartitionConfig& partition :
       {PartitionConfig::Iid(), PartitionConfig::SortedFraction(0.6),
        PartitionConfig::LabelToFew(0, 2)}) {
    TrainerConfig config = BaseConfig(4);
    config.partition = partition;
    config.max_steps = 30;
    DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                               config);
    auto policy = MakeSyncPolicy(AlgorithmConfig::LinearFda(0.5),
                                 trainer.model_dim());
    ASSERT_TRUE(policy.ok());
    auto result = trainer.Run(policy->get());
    ASSERT_TRUE(result.ok()) << partition.ToString();
    EXPECT_GT(result->final_test_accuracy, 0.05);
  }
}

TEST(AlgorithmConfigTest, ValidationAndNames) {
  EXPECT_TRUE(AlgorithmConfig::Synchronous().Validate().ok());
  EXPECT_FALSE(AlgorithmConfig::SketchFda(-1.0).Validate().ok());
  auto bad_tau = AlgorithmConfig::LocalSgd(TauSchedule::Fixed(1));
  bad_tau.tau.tau0 = 0;
  EXPECT_FALSE(bad_tau.Validate().ok());
  EXPECT_EQ(std::string(AlgorithmName(Algorithm::kSketchFda)), "SketchFDA");
  EXPECT_NE(AlgorithmConfig::FedAdam(2).ToString().find("E=2"),
            std::string::npos);
}

TEST(AlgorithmConfigTest, FactoryBuildsEveryAlgorithm) {
  for (auto config :
       {AlgorithmConfig::Synchronous(),
        AlgorithmConfig::LocalSgd(TauSchedule::Fixed(8)),
        AlgorithmConfig::SketchFda(1.0), AlgorithmConfig::LinearFda(1.0),
        AlgorithmConfig::ExactFda(1.0), AlgorithmConfig::FedAvg(1),
        AlgorithmConfig::FedAvgM(1), AlgorithmConfig::FedAdam(1)}) {
    auto policy = MakeSyncPolicy(config, 64);
    ASSERT_TRUE(policy.ok()) << config.ToString();
    EXPECT_FALSE((*policy)->name().empty());
  }
}

}  // namespace
}  // namespace fedra
