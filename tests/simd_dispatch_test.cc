// Dispatch-matrix parity suite: force-runs every compiled-in SIMD level on
// this machine (simd::SupportedLevels + simd::SetLevel) and checks each
// dispatched kernel against its ref:: oracle to parity tolerance. Also pins
// the two exact clauses of the determinism contract (docs/determinism.md):
// a fixed level is bit-deterministic run-to-run, and kScalar == kGeneric
// bit-for-bit on the flat-span kernels (they share the portable canonical
// bodies). Sizes straddle every vector width's main-loop/remainder split so
// tail handling is covered at all levels.

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/ref_ops.h"
#include "tensor/simd_dispatch.h"
#include "util/rng.h"

namespace fedra {
namespace {

constexpr double kRelTol = 1e-4;

// Remainders against 8/16/32/64-wide strides, plus tiny and empty spans.
constexpr size_t kSizes[] = {0, 1, 3, 7, 8, 15, 16, 31, 33, 64, 127, 257,
                             1000, 4096 + 5};

std::vector<float> RandomVec(size_t n, uint64_t seed, float lo = -2.0f,
                             float hi = 2.0f) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) {
    x = rng.NextUniform(lo, hi);
  }
  return v;
}

void ExpectSpanNear(const std::vector<float>& got,
                    const std::vector<float>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    const double denom = std::max(
        1.0, std::max(std::fabs(static_cast<double>(got[i])),
                      std::fabs(static_cast<double>(want[i]))));
    ASSERT_NEAR(got[i], want[i], kRelTol * denom) << "index " << i;
  }
}

// Restores whatever level resolution had picked before the test fiddled
// with it, so suites sharing the binary see an unchanged dispatch state.
class SimdDispatchTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_level_ = simd::ActiveLevel(); }
  void TearDown() override { simd::SetLevel(saved_level_); }

  simd::Level saved_level_;
};

TEST_F(SimdDispatchTest, SupportedLevelsAlwaysIncludePortableTiers) {
  EXPECT_TRUE(simd::LevelSupported(simd::Level::kScalar));
  EXPECT_TRUE(simd::LevelSupported(simd::Level::kGeneric));
  const auto levels = simd::SupportedLevels();
  ASSERT_GE(levels.size(), 2u);
  EXPECT_EQ(levels[0], simd::Level::kScalar);
  EXPECT_EQ(levels[1], simd::Level::kGeneric);
  for (simd::Level level : levels) {
    EXPECT_TRUE(simd::LevelSupported(level)) << simd::LevelName(level);
  }
}

TEST_F(SimdDispatchTest, LevelNamesRoundTripThroughParse) {
  for (simd::Level level :
       {simd::Level::kScalar, simd::Level::kGeneric, simd::Level::kAvx2,
        simd::Level::kAvx512, simd::Level::kNeon}) {
    simd::Level parsed;
    ASSERT_TRUE(simd::ParseLevelName(simd::LevelName(level), &parsed))
        << simd::LevelName(level);
    EXPECT_EQ(parsed, level);
  }
  simd::Level parsed;
  EXPECT_FALSE(simd::ParseLevelName("sse9", &parsed));
  EXPECT_FALSE(simd::ParseLevelName("", &parsed));
}

TEST_F(SimdDispatchTest, SetLevelPublishesMatchingActiveLevel) {
  for (simd::Level level : simd::SupportedLevels()) {
    simd::SetLevel(level);
    EXPECT_EQ(simd::ActiveLevel(), level) << simd::LevelName(level);
    // The table must be the level's own table, observable through behavior:
    // a trivial dot must work at every level.
    const float one[4] = {1.0f, 1.0f, 1.0f, 1.0f};
    EXPECT_DOUBLE_EQ(simd::Kernels().dot(one, one, 4), 4.0);
  }
}

// ------------------------------------------------------- flat-span parity --

TEST_F(SimdDispatchTest, AxpyMatchesOracleAtEveryLevel) {
  for (simd::Level level : simd::SupportedLevels()) {
    SCOPED_TRACE(simd::LevelName(level));
    simd::SetLevel(level);
    for (size_t n : kSizes) {
      SCOPED_TRACE(::testing::Message() << "n=" << n);
      const auto x = RandomVec(n, 101 + n);
      auto y = RandomVec(n, 202 + n);
      auto want = y;
      ref::Axpy(0.37f, x.data(), want.data(), n);
      simd::Kernels().axpy(0.37f, x.data(), y.data(), n);
      ExpectSpanNear(y, want);
    }
  }
}

TEST_F(SimdDispatchTest, DotMatchesOracleAtEveryLevel) {
  for (simd::Level level : simd::SupportedLevels()) {
    SCOPED_TRACE(simd::LevelName(level));
    simd::SetLevel(level);
    for (size_t n : kSizes) {
      SCOPED_TRACE(::testing::Message() << "n=" << n);
      const auto a = RandomVec(n, 303 + n);
      const auto b = RandomVec(n, 404 + n);
      const double want = ref::Dot(a.data(), b.data(), n);
      const double got = simd::Kernels().dot(a.data(), b.data(), n);
      EXPECT_NEAR(got, want, kRelTol * std::max(1.0, std::fabs(want)));
    }
  }
}

TEST_F(SimdDispatchTest, SquaredNormMatchesOracleAtEveryLevel) {
  for (simd::Level level : simd::SupportedLevels()) {
    SCOPED_TRACE(simd::LevelName(level));
    simd::SetLevel(level);
    for (size_t n : kSizes) {
      SCOPED_TRACE(::testing::Message() << "n=" << n);
      const auto x = RandomVec(n, 505 + n);
      const double want = ref::SquaredNorm(x.data(), n);
      const double got = simd::Kernels().squared_norm(x.data(), n);
      EXPECT_NEAR(got, want, kRelTol * std::max(1.0, want));
    }
  }
}

TEST_F(SimdDispatchTest, SubSquaredNormMatchesOracleAtEveryLevel) {
  for (simd::Level level : simd::SupportedLevels()) {
    SCOPED_TRACE(simd::LevelName(level));
    simd::SetLevel(level);
    for (size_t n : kSizes) {
      SCOPED_TRACE(::testing::Message() << "n=" << n);
      const auto a = RandomVec(n, 606 + n);
      const auto b = RandomVec(n, 707 + n);
      std::vector<float> out(n, 0.0f);
      std::vector<float> want_out(n, 0.0f);
      const double want =
          ref::SubSquaredNorm(a.data(), b.data(), want_out.data(), n);
      const double got =
          simd::Kernels().sub_squared_norm(a.data(), b.data(), out.data(), n);
      EXPECT_NEAR(got, want, kRelTol * std::max(1.0, want));
      ExpectSpanNear(out, want_out);
    }
  }
}

TEST_F(SimdDispatchTest, AxpyNormMatchesOracleAtEveryLevel) {
  for (simd::Level level : simd::SupportedLevels()) {
    SCOPED_TRACE(simd::LevelName(level));
    simd::SetLevel(level);
    for (size_t n : kSizes) {
      SCOPED_TRACE(::testing::Message() << "n=" << n);
      const auto x = RandomVec(n, 808 + n);
      auto y = RandomVec(n, 909 + n);
      auto want_y = y;
      const double want = ref::AxpyNorm(-0.21f, x.data(), want_y.data(), n);
      const double got =
          simd::Kernels().axpy_norm(-0.21f, x.data(), y.data(), n);
      EXPECT_NEAR(got, want, kRelTol * std::max(1.0, want));
      ExpectSpanNear(y, want_y);
    }
  }
}

// -------------------------------------------------------- reduction parity --

TEST_F(SimdDispatchTest, ReduceScaleMatchesOracleAtEveryLevel) {
  constexpr size_t kBufs = 5;
  for (simd::Level level : simd::SupportedLevels()) {
    SCOPED_TRACE(simd::LevelName(level));
    simd::SetLevel(level);
    for (size_t n : kSizes) {
      SCOPED_TRACE(::testing::Message() << "n=" << n);
      std::vector<std::vector<float>> storage;
      std::vector<const float*> bufs;
      for (size_t k = 0; k < kBufs; ++k) {
        storage.push_back(RandomVec(n, 1111 + 13 * k + n));
        bufs.push_back(storage.back().data());
      }
      std::vector<float> out(n, 0.0f);
      std::vector<float> want(n, 0.0f);
      ref::ReduceScale(bufs.data(), kBufs, n, 1.0 / kBufs, want.data());
      simd::Kernels().reduce_scale(bufs.data(), kBufs, n, 1.0 / kBufs,
                                   out.data());
      ExpectSpanNear(out, want);
    }
  }
}

TEST_F(SimdDispatchTest, WeightedReduceMatchesOracleAtEveryLevel) {
  constexpr size_t kBufs = 4;
  const double weights[kBufs] = {0.4, 0.1, 0.3, 0.2};
  for (simd::Level level : simd::SupportedLevels()) {
    SCOPED_TRACE(simd::LevelName(level));
    simd::SetLevel(level);
    for (size_t n : kSizes) {
      SCOPED_TRACE(::testing::Message() << "n=" << n);
      std::vector<std::vector<float>> storage;
      std::vector<const float*> bufs;
      for (size_t k = 0; k < kBufs; ++k) {
        storage.push_back(RandomVec(n, 2222 + 17 * k + n));
        bufs.push_back(storage.back().data());
      }
      std::vector<float> out(n, 0.0f);
      std::vector<float> want(n, 0.0f);
      ref::WeightedReduce(bufs.data(), weights, kBufs, n, want.data());
      simd::Kernels().weighted_reduce(bufs.data(), weights, kBufs, n,
                                      out.data());
      ExpectSpanNear(out, want);
    }
  }
}

// ----------------------------------------------------- GEMM micro-kernel --

// acc[i][j] = sum_k apanel[k*Mr + i] * bpanel[k*Nr + j], one double
// accumulator per cell — the packed-panel contract every variant implements.
void MicroKernelOracle(int kc, const float* apanel, const float* bpanel,
                       float* acc) {
  for (int i = 0; i < simd::kGemmMr; ++i) {
    for (int j = 0; j < simd::kGemmNr; ++j) {
      double sum = 0.0;
      for (int k = 0; k < kc; ++k) {
        sum += static_cast<double>(apanel[k * simd::kGemmMr + i]) *
               static_cast<double>(bpanel[k * simd::kGemmNr + j]);
      }
      acc[i * simd::kGemmNr + j] = static_cast<float>(sum);
    }
  }
}

TEST_F(SimdDispatchTest, GemmMicroKernelMatchesOracleAtEveryLevel) {
  const size_t tile =
      static_cast<size_t>(simd::kGemmMr) * static_cast<size_t>(simd::kGemmNr);
  for (simd::Level level : simd::SupportedLevels()) {
    SCOPED_TRACE(simd::LevelName(level));
    simd::SetLevel(level);
    for (int kc : {1, 2, 7, 64, 256}) {
      SCOPED_TRACE(::testing::Message() << "kc=" << kc);
      const auto apanel = RandomVec(
          static_cast<size_t>(kc) * simd::kGemmMr, 3333 + kc);
      const auto bpanel = RandomVec(
          static_cast<size_t>(kc) * simd::kGemmNr, 4444 + kc);
      std::vector<float> acc(tile, 0.0f);
      std::vector<float> want(tile, 0.0f);
      MicroKernelOracle(kc, apanel.data(), bpanel.data(), want.data());
      simd::Kernels().gemm_micro_8x32(kc, apanel.data(), bpanel.data(),
                                      acc.data());
      ExpectSpanNear(acc, want);
    }
  }
}

// -------------------------------------------------- determinism contract --

TEST_F(SimdDispatchTest, FixedLevelIsBitDeterministicRunToRun) {
  const size_t n = 4096 + 5;
  const auto a = RandomVec(n, 5555);
  const auto b = RandomVec(n, 6666);
  for (simd::Level level : simd::SupportedLevels()) {
    SCOPED_TRACE(simd::LevelName(level));
    simd::SetLevel(level);
    const double first = simd::Kernels().dot(a.data(), b.data(), n);
    const double norm_first = simd::Kernels().squared_norm(a.data(), n);
    for (int rep = 0; rep < 3; ++rep) {
      // EXPECT_EQ, not NEAR: same level + same inputs must be the same bits.
      EXPECT_EQ(simd::Kernels().dot(a.data(), b.data(), n), first);
      EXPECT_EQ(simd::Kernels().squared_norm(a.data(), n), norm_first);
    }
  }
}

TEST_F(SimdDispatchTest, ScalarAndGenericAreBitIdenticalOnFlatSpanKernels) {
  // kScalar and kGeneric dispatch to the same portable canonical bodies for
  // the flat-span kernels, so they are bit-identical — the clause that lets
  // golden-history suites pin kGeneric and still describe kScalar builds.
  for (size_t n : kSizes) {
    SCOPED_TRACE(::testing::Message() << "n=" << n);
    const auto x = RandomVec(n, 7777 + n);
    const auto b = RandomVec(n, 8888 + n);

    simd::SetLevel(simd::Level::kScalar);
    auto y_scalar = RandomVec(n, 9999 + n);
    const double dot_scalar = simd::Kernels().dot(x.data(), b.data(), n);
    const double axpy_scalar =
        simd::Kernels().axpy_norm(0.61f, x.data(), y_scalar.data(), n);

    simd::SetLevel(simd::Level::kGeneric);
    auto y_generic = RandomVec(n, 9999 + n);
    const double dot_generic = simd::Kernels().dot(x.data(), b.data(), n);
    const double axpy_generic =
        simd::Kernels().axpy_norm(0.61f, x.data(), y_generic.data(), n);

    EXPECT_EQ(dot_scalar, dot_generic);
    EXPECT_EQ(axpy_scalar, axpy_generic);
    ASSERT_EQ(y_scalar.size(), y_generic.size());
    EXPECT_EQ(0, std::memcmp(y_scalar.data(), y_generic.data(),
                             n * sizeof(float)));
  }
}

}  // namespace
}  // namespace fedra
