// Unit tests for src/util: Status, StatusOr, Rng, ThreadPool, strings, CSV.

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace fedra {
namespace {

// ----------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad theta");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad theta");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad theta");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::Internal("a"), Status::Internal("a"));
  EXPECT_FALSE(Status::Internal("a") == Status::Internal("b"));
  EXPECT_FALSE(Status::Internal("a") == Status::IOError("a"));
}

Status FailsThenPropagates() {
  FEDRA_RETURN_IF_ERROR(Status::NotFound("inner"));
  return Status::Ok();  // unreachable
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status status = FailsThenPropagates();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "inner");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::NotFound("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result = std::string("payload");
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH({ FEDRA_CHECK(1 == 2) << "context"; }, "FEDRA_CHECK");
}

TEST(CheckDeathTest, FailedCheckEqPrintsOperands) {
  EXPECT_DEATH({ FEDRA_CHECK_EQ(3, 5); }, "a=.*b=");
}

TEST(CheckDeathTest, ValueOnErrorStatusOrAborts) {
  StatusOr<int> result = Status::Internal("boom");
  EXPECT_DEATH({ (void)result.value(); }, "boom");
}

// -------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.NextUint64() == b.NextUint64();
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForkIsIndependentOfParentConsumption) {
  Rng parent(7);
  Rng fork_before = parent.Fork(3);
  parent.NextUint64();
  Rng fork_after = parent.Fork(3);
  // Fork depends only on parent state at fork time; we forked at different
  // parent states... actually state is unchanged by Fork, and NextUint64
  // mutates it. Verify forking twice from the same state matches.
  Rng parent2(7);
  Rng fork2 = parent2.Fork(3);
  EXPECT_EQ(fork_before.NextUint64(), fork2.NextUint64());
  (void)fork_after;
}

TEST(RngTest, ForkStreamsDiffer) {
  Rng parent(7);
  Rng f0 = parent.Fork(0);
  Rng f1 = parent.Fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += f0.NextUint64() == f1.NextUint64();
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(5);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.NextBounded(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, PermutationIsValid) {
  Rng rng(17);
  auto perm = rng.Permutation(100);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RngTest, BernoulliExtremeProbabilities) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, SignIsBalanced) {
  Rng rng(29);
  int pos = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    pos += rng.NextSign() > 0;
  }
  EXPECT_NEAR(static_cast<double>(pos) / n, 0.5, 0.03);
}

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingle) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL() << "must not run"; });
  int runs = 0;
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

TEST(ThreadPoolTest, ParallelForChunkedGrainCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t i) { ++hits[i]; },
                   /*grain=*/64);
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForRangeChunksAreDisjointAndComplete) {
  ThreadPool pool(4);
  const size_t n = 1003;
  const size_t grain = 100;
  std::vector<std::atomic<int>> hits(n);
  std::atomic<size_t> max_chunk{0};
  pool.ParallelForRange(n, grain, [&](size_t begin, size_t end) {
    EXPECT_LT(begin, end);
    EXPECT_LE(end - begin, grain);
    size_t len = end - begin;
    size_t prev = max_chunk.load();
    while (len > prev && !max_chunk.compare_exchange_weak(prev, len)) {
    }
    for (size_t i = begin; i < end; ++i) {
      ++hits[i];
    }
  });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  // A chunk body runs either on a pool worker or on the calling thread (the
  // caller helps drain its own chunks). A nested ParallelFor must complete
  // from both contexts: inline on a worker (a worker waiting on a nested
  // token would block the thread that has to drain its deque), scheduled
  // normally from the helping caller.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.ParallelFor(4, [&](size_t) {
    if (ThreadPool::OnPoolThread()) {
      // Nested call from a worker: must run inline without touching queues.
      pool.ParallelFor(8, [&](size_t) {
        EXPECT_TRUE(ThreadPool::OnPoolThread());
        ++counter;
      });
    } else {
      pool.ParallelFor(8, [&](size_t) { ++counter; });
    }
  });
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPoolTest, ScheduleAndWait) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Schedule([&] { ++counter; });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int> counter{0};
  GlobalThreadPool().ParallelFor(10, [&](size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

// ---------------------------------------------------------------- strings

TEST(StringUtilTest, StrFormatBasic) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(StrFormat("%s", "hello"), "hello");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringUtilTest, HumanBytesUnits) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(3.5 * 1024 * 1024), "3.50 MB");
  EXPECT_EQ(HumanBytes(1024.0 * 1024 * 1024), "1.00 GB");
}

TEST(StringUtilTest, HumanCountUnits) {
  EXPECT_EQ(HumanCount(512), "512");
  EXPECT_EQ(HumanCount(62000), "62K");
  EXPECT_EQ(HumanCount(6900000), "6.9M");
  EXPECT_EQ(HumanCount(2600000000ULL), "2.6B");
}

TEST(StringUtilTest, StrSplitKeepsEmptyFields) {
  auto fields = StrSplit("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(StringUtilTest, StrJoin) {
  std::vector<int> xs = {1, 2, 3};
  EXPECT_EQ(StrJoin(xs, ", "), "1, 2, 3");
  EXPECT_EQ(StrJoin(std::vector<int>{}, ","), "");
}

TEST(StringUtilTest, Padding) {
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("abcdef", 4), "abcdef");
}

// -------------------------------------------------------------------- CSV

TEST(CsvTest, HeaderAndRows) {
  CsvWriter csv({"a", "b"});
  csv.Add(1, "x");
  csv.Add(2.5, "y");
  EXPECT_EQ(csv.ToString(), "a,b\n1,x\n2.5,y\n");
  EXPECT_EQ(csv.num_rows(), 2u);
  EXPECT_EQ(csv.num_columns(), 2u);
}

TEST(CsvTest, EscapesSpecialCharacters) {
  CsvWriter csv({"v"});
  csv.Add("has,comma");
  csv.Add("has\"quote");
  csv.Add("has\nnewline");
  EXPECT_EQ(csv.ToString(),
            "v\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(CsvTest, RowArityMismatchDies) {
  CsvWriter csv({"a", "b"});
  EXPECT_DEATH(csv.AddRow({"only-one"}), "FEDRA_CHECK");
}

TEST(CsvTest, WriteToFileRoundTrips) {
  CsvWriter csv({"k", "v"});
  csv.Add("alpha", 1);
  const std::string path = ::testing::TempDir() + "/fedra_csv_test.csv";
  ASSERT_TRUE(csv.WriteToFile(path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "k,v\nalpha,1\n");
  std::remove(path.c_str());
}

TEST(CsvTest, WriteToBadPathFails) {
  CsvWriter csv({"a"});
  EXPECT_FALSE(csv.WriteToFile("/nonexistent-dir/x.csv").ok());
}

// -------------------------------------------------------------- Stopwatch

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  double first = watch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GE(watch.ElapsedSeconds(), first);
  watch.Restart();
  EXPECT_LT(watch.ElapsedMillis(), 1000.0);
}

}  // namespace
}  // namespace fedra
