// Layer tests: shape contracts, exact small cases, and finite-difference
// gradient checks for every layer type (the invariant that makes the whole
// DL substrate trustworthy). Layers execute through a LayerHarness — the
// standalone ParameterStore + LayerStateStore environment mirroring what a
// shared ModelGraph provides per execution slot.

#include <memory>

#include <gtest/gtest.h>

#include "nn/composite.h"
#include "nn/layers_basic.h"
#include "nn/layers_conv.h"
#include "nn/layers_norm.h"
#include "nn/loss.h"
#include "tests/test_util.h"

namespace fedra {
namespace {

using testing::CheckInputGradient;
using testing::FillUniform;
using testing::LayerHarness;

// ------------------------------------------------------------------ Dense

TEST(DenseLayerTest, ForwardShapeAndBias) {
  DenseLayer layer(3, 2);
  LayerHarness harness(&layer);
  // Set known weights: W = [[1,0,0],[0,1,0]], b = [10, 20].
  float* w = harness.store().BlockParams(0);
  float* b = harness.store().BlockParams(1);
  for (int i = 0; i < 6; ++i) {
    w[i] = 0.0f;
  }
  w[0] = 1.0f;  // W(0,0)
  w[4] = 1.0f;  // W(1,1)
  b[0] = 10.0f;
  b[1] = 20.0f;
  Tensor x({1, 3});
  x[0] = 1.0f;
  x[1] = 2.0f;
  x[2] = 3.0f;
  Tensor y = harness.Forward(x);
  ASSERT_EQ(y.rank(), 2);
  EXPECT_EQ(y.dim(1), 2);
  EXPECT_FLOAT_EQ(y[0], 11.0f);
  EXPECT_FLOAT_EQ(y[1], 22.0f);
}

TEST(DenseLayerTest, InputGradientMatchesFiniteDifferences) {
  DenseLayer layer(5, 4);
  LayerHarness harness(&layer);
  Rng rng(2);
  Tensor x({3, 5});
  FillUniform(&x, &rng);
  harness.store().ZeroGrads();
  auto result = CheckInputGradient(&harness, x, 77);
  EXPECT_LT(result.max_rel_error, 2e-2) << "abs " << result.max_abs_error;
}

TEST(DenseLayerTest, ParamGradientAccumulates) {
  DenseLayer layer(2, 2);
  LayerHarness harness(&layer);
  Tensor x({1, 2});
  x[0] = 1.0f;
  x[1] = 1.0f;
  Tensor go({1, 2});
  go[0] = 1.0f;
  go[1] = 0.0f;
  harness.store().ZeroGrads();
  harness.Forward(x);
  harness.Backward(go);
  harness.Forward(x);
  harness.Backward(go);  // second pass must add, not overwrite
  EXPECT_FLOAT_EQ(harness.store().BlockGrads(0)[0], 2.0f);
}

TEST(DenseLayerTest, GlorotInitWithinLimit) {
  DenseLayer layer(100, 50);
  LayerHarness harness(&layer, 3);
  const float limit = std::sqrt(6.0f / 150.0f);
  const float* w = harness.store().BlockParams(0);
  float max_abs = 0.0f;
  for (size_t i = 0; i < 5000; ++i) {
    max_abs = std::max(max_abs, std::fabs(w[i]));
  }
  EXPECT_LE(max_abs, limit);
  EXPECT_GT(max_abs, 0.5f * limit);  // actually spread out
}

// ------------------------------------------------------------ Activations

TEST(ActivationTest, ReluClampsNegatives) {
  ActivationLayer relu(Activation::kRelu);
  LayerHarness harness(&relu);
  Tensor x({1, 4});
  x[0] = -1.0f;
  x[1] = 0.0f;
  x[2] = 2.0f;
  x[3] = -3.0f;
  Tensor y = harness.Forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

class ActivationGradTest : public ::testing::TestWithParam<Activation> {};

TEST_P(ActivationGradTest, GradientMatchesFiniteDifferences) {
  ActivationLayer layer(GetParam());
  LayerHarness harness(&layer);
  Rng rng(4);
  Tensor x({2, 8});
  FillUniform(&x, &rng, -2.0f, 2.0f);
  // Nudge values away from ReLU's kink where FD is ill-defined.
  for (size_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x[i]) < 0.05f) {
      x[i] = 0.1f;
    }
  }
  auto result = CheckInputGradient(&harness, x, 88);
  EXPECT_LT(result.max_rel_error, 2e-2);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ActivationGradTest,
                         ::testing::Values(Activation::kRelu,
                                           Activation::kTanh,
                                           Activation::kGelu));

TEST(ActivationTest, GeluMatchesKnownValues) {
  ActivationLayer gelu(Activation::kGelu);
  LayerHarness harness(&gelu);
  Tensor x({1, 3});
  x[0] = 0.0f;
  x[1] = 1.0f;
  x[2] = -1.0f;
  Tensor y = harness.Forward(x);
  EXPECT_NEAR(y[0], 0.0f, 1e-6);
  EXPECT_NEAR(y[1], 0.8412f, 1e-3);
  EXPECT_NEAR(y[2], -0.1588f, 1e-3);
}

// ---------------------------------------------------------------- Dropout

TEST(DropoutTest, EvalModeIsIdentity) {
  DropoutLayer dropout(0.5f);
  LayerHarness harness(&dropout);
  Rng rng(5);
  Tensor x({4, 8});
  FillUniform(&x, &rng);
  harness.ctx().training = false;
  Tensor y = harness.Forward(x);
  for (size_t i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(y[i], x[i]);
  }
}

TEST(DropoutTest, TrainingZeroesAndRescales) {
  DropoutLayer dropout(0.5f);
  LayerHarness harness(&dropout);
  Rng rng(6);
  Tensor x = Tensor::Full({1, 1000}, 1.0f);
  harness.ctx().training = true;
  harness.ctx().rng = &rng;
  Tensor y = harness.Forward(x);
  int zeros = 0;
  for (size_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_FLOAT_EQ(y[i], 2.0f);  // 1 / (1 - 0.5)
    }
  }
  EXPECT_GT(zeros, 400);
  EXPECT_LT(zeros, 600);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  DropoutLayer dropout(0.3f);
  LayerHarness harness(&dropout);
  Rng rng(7);
  Tensor x = Tensor::Full({1, 100}, 1.0f);
  harness.ctx().training = true;
  harness.ctx().rng = &rng;
  Tensor y = harness.Forward(x);
  Tensor go = Tensor::Full({1, 100}, 1.0f);
  Tensor gi = harness.Backward(go);
  for (size_t i = 0; i < y.numel(); ++i) {
    EXPECT_FLOAT_EQ(gi[i], y[i]);  // same scaling pattern
  }
}

TEST(DropoutTest, ZeroRateIsAlwaysIdentity) {
  DropoutLayer dropout(0.0f);
  LayerHarness harness(&dropout);
  Rng rng(8);
  Tensor x({2, 4});
  FillUniform(&x, &rng);
  harness.ctx().training = true;
  harness.ctx().rng = &rng;
  Tensor y = harness.Forward(x);
  for (size_t i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(y[i], x[i]);
  }
}

// ---------------------------------------------------------------- Flatten

TEST(FlattenTest, RoundTrip) {
  FlattenLayer flatten;
  LayerHarness harness(&flatten);
  Rng rng(9);
  Tensor x({2, 3, 4, 5});
  FillUniform(&x, &rng);
  Tensor y = harness.Forward(x);
  EXPECT_EQ(y.rank(), 2);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 60);
  Tensor back = harness.Backward(y);
  EXPECT_TRUE(back.SameShape(x));
  for (size_t i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(back[i], x[i]);
  }
}

// ------------------------------------------------------------ Conv layers

TEST(Conv2dLayerTest, OutputShape) {
  Conv2dLayer conv(3, 8, 3, 1, 1);
  LayerHarness harness(&conv);
  Tensor x({2, 3, 6, 6});
  Tensor y = harness.Forward(x);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 8);
  EXPECT_EQ(y.dim(2), 6);
  EXPECT_EQ(y.dim(3), 6);
}

TEST(Conv2dLayerTest, InputGradient) {
  Conv2dLayer conv(2, 3, 3, 1, 1);
  LayerHarness harness(&conv);
  Rng rng(10);
  Tensor x({1, 2, 5, 5});
  FillUniform(&x, &rng);
  harness.store().ZeroGrads();
  auto result = CheckInputGradient(&harness, x, 99);
  EXPECT_LT(result.max_rel_error, 3e-2);
}

TEST(DepthwiseLayerTest, InputGradient) {
  DepthwiseConv2dLayer conv(3, 3, 1, 1);
  LayerHarness harness(&conv);
  Rng rng(11);
  Tensor x({1, 3, 5, 5});
  FillUniform(&x, &rng);
  harness.store().ZeroGrads();
  auto result = CheckInputGradient(&harness, x, 100);
  EXPECT_LT(result.max_rel_error, 3e-2);
}

TEST(PoolLayerTest, MaxAndAvgGradients) {
  Rng rng(12);
  Tensor x({1, 2, 6, 6});
  FillUniform(&x, &rng);
  {
    Pool2dLayer pool(PoolKind::kAvg, 2, 2);
    LayerHarness harness(&pool);
    auto result = CheckInputGradient(&harness, x, 101);
    EXPECT_LT(result.max_rel_error, 2e-2);
  }
  {
    // MaxPool FD checks need distinct values; random uniform floats are
    // almost surely distinct.
    Pool2dLayer pool(PoolKind::kMax, 2, 2);
    LayerHarness harness(&pool);
    auto result = CheckInputGradient(&harness, x, 102);
    EXPECT_LT(result.max_rel_error, 2e-2);
  }
}

TEST(GlobalAvgPoolLayerTest, ShapeAndGradient) {
  GlobalAvgPoolLayer gap;
  LayerHarness harness(&gap);
  Rng rng(13);
  Tensor x({2, 3, 4, 4});
  FillUniform(&x, &rng);
  Tensor y = harness.Forward(x);
  EXPECT_EQ(y.rank(), 2);
  EXPECT_EQ(y.dim(1), 3);
  auto result = CheckInputGradient(&harness, x, 103);
  EXPECT_LT(result.max_rel_error, 1e-2);
}

// ------------------------------------------------------------------ Norms

TEST(BatchNormTest, NormalizesPerChannel) {
  BatchNorm2dLayer bn(2);
  LayerHarness harness(&bn);
  Rng rng(14);
  Tensor x({4, 2, 3, 3});
  FillUniform(&x, &rng, -3.0f, 5.0f);
  Tensor y = harness.Forward(x);
  // With gamma=1, beta=0 the per-channel mean ~ 0 and variance ~ 1.
  for (int c = 0; c < 2; ++c) {
    double sum = 0.0;
    double sum_sq = 0.0;
    int count = 0;
    for (int n = 0; n < 4; ++n) {
      for (int h = 0; h < 3; ++h) {
        for (int w = 0; w < 3; ++w) {
          const float v = y.at(n, c, h, w);
          sum += v;
          sum_sq += static_cast<double>(v) * v;
          ++count;
        }
      }
    }
    EXPECT_NEAR(sum / count, 0.0, 1e-4);
    EXPECT_NEAR(sum_sq / count, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, InputGradient) {
  BatchNorm2dLayer bn(2);
  LayerHarness harness(&bn);
  Rng rng(15);
  Tensor x({3, 2, 4, 4});
  FillUniform(&x, &rng, -2.0f, 2.0f);
  harness.store().ZeroGrads();
  auto result = CheckInputGradient(&harness, x, 104);
  EXPECT_LT(result.max_rel_error, 5e-2);
}

TEST(LayerNormTest, NormalizesAcrossChannels) {
  LayerNormChannelsLayer ln(8);
  LayerHarness harness(&ln);
  Rng rng(16);
  Tensor x({2, 8, 2, 2});
  FillUniform(&x, &rng, -4.0f, 4.0f);
  Tensor y = harness.Forward(x);
  // Each (n, h, w) position: mean over channels ~ 0, var ~ 1.
  for (int n = 0; n < 2; ++n) {
    for (int h = 0; h < 2; ++h) {
      for (int w = 0; w < 2; ++w) {
        double sum = 0.0;
        double sum_sq = 0.0;
        for (int c = 0; c < 8; ++c) {
          sum += y.at(n, c, h, w);
          sum_sq += static_cast<double>(y.at(n, c, h, w)) * y.at(n, c, h, w);
        }
        EXPECT_NEAR(sum / 8.0, 0.0, 1e-4);
        EXPECT_NEAR(sum_sq / 8.0, 1.0, 2e-2);
      }
    }
  }
}

TEST(LayerNormTest, AcceptsRank2Input) {
  LayerNormChannelsLayer ln(6);
  LayerHarness harness(&ln);
  Rng rng(17);
  Tensor x({3, 6});
  FillUniform(&x, &rng);
  Tensor y = harness.Forward(x);
  EXPECT_TRUE(y.SameShape(x));
}

TEST(LayerNormTest, InputGradient) {
  LayerNormChannelsLayer ln(4);
  LayerHarness harness(&ln);
  Rng rng(18);
  Tensor x({2, 4, 3, 3});
  FillUniform(&x, &rng, -2.0f, 2.0f);
  harness.store().ZeroGrads();
  auto result = CheckInputGradient(&harness, x, 105);
  EXPECT_LT(result.max_rel_error, 5e-2);
}

// ------------------------------------------------------------- Composites

TEST(SequentialTest, ChainsLayersInOrder) {
  auto seq = std::make_unique<Sequential>();
  seq->Add(std::make_unique<DenseLayer>(4, 8));
  seq->Add(std::make_unique<ActivationLayer>(Activation::kRelu));
  seq->Add(std::make_unique<DenseLayer>(8, 2));
  LayerHarness harness(seq.get());
  Rng rng(19);
  Tensor x({2, 4});
  FillUniform(&x, &rng);
  Tensor y = harness.Forward(x);
  EXPECT_EQ(y.dim(1), 2);
  EXPECT_EQ(seq->size(), 3u);
}

TEST(SequentialTest, GradientFlowsThroughChain) {
  auto seq = std::make_unique<Sequential>();
  seq->Add(std::make_unique<DenseLayer>(4, 6));
  seq->Add(std::make_unique<ActivationLayer>(Activation::kTanh));
  seq->Add(std::make_unique<DenseLayer>(6, 3));
  LayerHarness harness(seq.get());
  Rng rng(20);
  Tensor x({2, 4});
  FillUniform(&x, &rng);
  harness.store().ZeroGrads();
  auto result = CheckInputGradient(&harness, x, 106);
  EXPECT_LT(result.max_rel_error, 2e-2);
}

TEST(ResidualTest, AddsIdentity) {
  // Residual around a zero-initialized dense layer = identity + bias(0).
  auto inner = std::make_unique<DenseLayer>(4, 4, init::Scheme::kZeros);
  ResidualLayer residual(std::move(inner));
  LayerHarness harness(&residual);
  Rng rng(21);
  Tensor x({2, 4});
  FillUniform(&x, &rng);
  Tensor y = harness.Forward(x);
  for (size_t i = 0; i < x.numel(); ++i) {
    EXPECT_FLOAT_EQ(y[i], x[i]);
  }
}

TEST(ResidualTest, Gradient) {
  auto inner = std::make_unique<DenseLayer>(5, 5);
  ResidualLayer residual(std::move(inner));
  LayerHarness harness(&residual);
  Rng rng(22);
  Tensor x({2, 5});
  FillUniform(&x, &rng);
  harness.store().ZeroGrads();
  auto result = CheckInputGradient(&harness, x, 107);
  EXPECT_LT(result.max_rel_error, 2e-2);
}

TEST(ConcatSliceTest, RoundTrip) {
  Rng rng(23);
  Tensor a({2, 3, 4, 4});
  Tensor b({2, 5, 4, 4});
  FillUniform(&a, &rng);
  FillUniform(&b, &rng);
  Tensor cat = ConcatChannels(a, b);
  EXPECT_EQ(cat.dim(1), 8);
  Tensor a2 = SliceChannels(cat, 0, 3);
  Tensor b2 = SliceChannels(cat, 3, 8);
  for (size_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(a2[i], a[i]);
  }
  for (size_t i = 0; i < b.numel(); ++i) {
    EXPECT_EQ(b2[i], b[i]);
  }
}

TEST(DenseBlockTest, OutputChannels) {
  DenseBlockLayer block(8, 4, 3);
  EXPECT_EQ(block.out_channels(), 8 + 12);
  LayerHarness harness(&block);
  Tensor x({1, 8, 4, 4});
  Rng rng(24);
  FillUniform(&x, &rng);
  Tensor y = harness.Forward(x);
  EXPECT_EQ(y.dim(1), 20);
  EXPECT_EQ(y.dim(2), 4);
}

TEST(DenseBlockTest, Gradient) {
  DenseBlockLayer block(4, 3, 2);
  LayerHarness harness(&block);
  Rng rng(25);
  Tensor x({1, 4, 4, 4});
  FillUniform(&x, &rng);
  harness.store().ZeroGrads();
  auto result = CheckInputGradient(&harness, x, 108);
  EXPECT_LT(result.max_rel_error, 8e-2);
}

// ------------------------------------------------------------------- Loss

TEST(LossTest, PerfectPredictionHasLowLoss) {
  Tensor logits({2, 3});
  logits.at(0, 0) = 100.0f;
  logits.at(1, 2) = 100.0f;
  LossResult result = SoftmaxCrossEntropy(logits, {0, 2});
  EXPECT_LT(result.loss, 1e-3);
  EXPECT_EQ(result.correct, 2u);
}

TEST(LossTest, UniformLogitsGiveLogC) {
  Tensor logits({1, 4});
  LossResult result = SoftmaxCrossEntropy(logits, {1});
  EXPECT_NEAR(result.loss, std::log(4.0), 1e-6);
}

TEST(LossTest, GradientSumsToZeroPerRow) {
  Rng rng(26);
  Tensor logits({3, 5});
  FillUniform(&logits, &rng, -2.0f, 2.0f);
  LossResult result = SoftmaxCrossEntropy(logits, {0, 3, 4});
  for (int b = 0; b < 3; ++b) {
    double sum = 0.0;
    for (int c = 0; c < 5; ++c) {
      sum += result.grad_logits.at(b, c);
    }
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(LossTest, GradientMatchesFiniteDifferences) {
  Rng rng(27);
  Tensor logits({2, 4});
  FillUniform(&logits, &rng, -1.0f, 1.0f);
  const std::vector<int> labels = {1, 3};
  LossResult base = SoftmaxCrossEntropy(logits, labels);
  const double eps = 1e-3;
  for (size_t i = 0; i < logits.numel(); ++i) {
    Tensor perturbed = logits;
    perturbed[i] += static_cast<float>(eps);
    const double hi = SoftmaxCrossEntropy(perturbed, labels).loss;
    perturbed[i] -= static_cast<float>(2 * eps);
    const double lo = SoftmaxCrossEntropy(perturbed, labels).loss;
    EXPECT_NEAR(base.grad_logits[i], (hi - lo) / (2 * eps), 1e-3);
  }
}

TEST(LossTest, NumericallyStableForHugeLogits) {
  Tensor logits({1, 3});
  logits[0] = 1e4f;
  logits[1] = -1e4f;
  logits[2] = 0.0f;
  LossResult result = SoftmaxCrossEntropy(logits, {0});
  EXPECT_TRUE(std::isfinite(result.loss));
  EXPECT_LT(result.loss, 1e-3);
}

TEST(LossTest, CountCorrectMatches) {
  Tensor logits({3, 2});
  logits.at(0, 1) = 1.0f;  // pred 1
  logits.at(1, 0) = 1.0f;  // pred 0
  logits.at(2, 1) = 1.0f;  // pred 1
  EXPECT_EQ(CountCorrect(logits, {1, 0, 0}), 2u);
}

// -------------------------------------------------------- ParameterStore

TEST(ParameterStoreTest, LayoutIsContiguous) {
  ParameterStore store;
  const size_t a = store.Register("a", {2, 3});
  const size_t b = store.Register("b", {4});
  store.Finalize();
  EXPECT_EQ(store.num_params(), 10u);
  EXPECT_EQ(store.block(a).offset, 0u);
  EXPECT_EQ(store.block(b).offset, 6u);
  EXPECT_EQ(store.BlockParams(b), store.params() + 6);
}

TEST(ParameterStoreTest, ZeroGradsClears) {
  ParameterStore store;
  store.Register("a", {4});
  store.Finalize();
  store.grads()[2] = 5.0f;
  store.ZeroGrads();
  EXPECT_EQ(store.grads()[2], 0.0f);
}

TEST(ParameterStoreTest, LayoutOnlyModeCountsStateSlots) {
  ParameterStore store;
  store.Register("a", {2, 2});
  EXPECT_EQ(store.RegisterStateSlot(), 0u);
  EXPECT_EQ(store.RegisterStateSlot(), 1u);
  store.FinalizeLayout();
  EXPECT_TRUE(store.finalized());
  EXPECT_FALSE(store.has_buffers());
  EXPECT_EQ(store.num_params(), 4u);
  EXPECT_EQ(store.num_state_slots(), 2u);
}

TEST(ParameterStoreDeathTest, RegisterAfterFinalizeDies) {
  ParameterStore store;
  store.Register("a", {1});
  store.Finalize();
  EXPECT_DEATH(store.Register("b", {1}), "after Finalize");
}

TEST(ParameterStoreDeathTest, AccessBeforeFinalizeDies) {
  ParameterStore store;
  store.Register("a", {1});
  EXPECT_DEATH(store.params(), "finalized");
}

TEST(ParameterStoreDeathTest, LayoutOnlyBufferAccessDies) {
  ParameterStore store;
  store.Register("a", {1});
  store.FinalizeLayout();
  EXPECT_DEATH(store.params(), "buffers");
}

}  // namespace
}  // namespace fedra
