// Optimizer tests: each update rule is checked against hand-computed
// reference sequences, plus config validation and state reset.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "opt/optimizer.h"

namespace fedra {
namespace {

TEST(OptimizerConfigTest, FactoriesSetKinds) {
  EXPECT_EQ(OptimizerConfig::Sgd(0.1f).kind, OptimizerConfig::Kind::kSgd);
  EXPECT_EQ(OptimizerConfig::SgdMomentum(0.1f, 0.9f).kind,
            OptimizerConfig::Kind::kSgdMomentum);
  EXPECT_EQ(OptimizerConfig::Adam().kind, OptimizerConfig::Kind::kAdam);
  EXPECT_EQ(OptimizerConfig::AdamW().kind, OptimizerConfig::Kind::kAdamW);
}

TEST(OptimizerConfigTest, ValidationCatchesBadValues) {
  auto config = OptimizerConfig::Sgd(0.0f);
  EXPECT_FALSE(config.Validate().ok());
  config = OptimizerConfig::SgdMomentum(0.1f, 1.0f);
  EXPECT_FALSE(config.Validate().ok());
  config = OptimizerConfig::Adam(0.001f);
  config.beta1 = 1.0f;
  EXPECT_FALSE(config.Validate().ok());
  config = OptimizerConfig::Adam(0.001f);
  config.epsilon = 0.0f;
  EXPECT_FALSE(config.Validate().ok());
  config = OptimizerConfig::Sgd(0.1f);
  config.weight_decay = -1.0f;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(OptimizerConfigTest, ToStringNamesKind) {
  EXPECT_NE(OptimizerConfig::Adam().ToString().find("Adam"),
            std::string::npos);
  EXPECT_NE(OptimizerConfig::SgdMomentum(0.1f, 0.9f).ToString().find("SGD"),
            std::string::npos);
}

TEST(SgdTest, PlainStepIsLrTimesGrad) {
  auto opt = Optimizer::Create(OptimizerConfig::Sgd(0.5f), 3);
  std::vector<float> params = {1.0f, 2.0f, 3.0f};
  std::vector<float> grads = {0.2f, -0.4f, 0.0f};
  opt->Step(params.data(), grads.data(), 3);
  EXPECT_FLOAT_EQ(params[0], 1.0f - 0.5f * 0.2f);
  EXPECT_FLOAT_EQ(params[1], 2.0f + 0.5f * 0.4f);
  EXPECT_FLOAT_EQ(params[2], 3.0f);
}

TEST(SgdTest, WeightDecayAddsL2Term) {
  auto opt = Optimizer::Create(OptimizerConfig::Sgd(0.1f, /*wd=*/0.5f), 1);
  std::vector<float> params = {2.0f};
  std::vector<float> grads = {0.0f};
  opt->Step(params.data(), grads.data(), 1);
  // g_eff = 0 + 0.5*2 = 1.0; p = 2 - 0.1*1 = 1.9.
  EXPECT_FLOAT_EQ(params[0], 1.9f);
}

TEST(SgdMomentumTest, HeavyBallReference) {
  // v_t = mu*v + g; p -= lr*v (non-Nesterov).
  auto opt = Optimizer::Create(
      OptimizerConfig::SgdMomentum(0.1f, 0.9f, /*nesterov=*/false), 1);
  std::vector<float> params = {0.0f};
  std::vector<float> grads = {1.0f};
  opt->Step(params.data(), grads.data(), 1);  // v=1,   p=-0.1
  EXPECT_NEAR(params[0], -0.1f, 1e-6);
  opt->Step(params.data(), grads.data(), 1);  // v=1.9, p=-0.29
  EXPECT_NEAR(params[0], -0.29f, 1e-6);
  opt->Step(params.data(), grads.data(), 1);  // v=2.71, p=-0.561
  EXPECT_NEAR(params[0], -0.561f, 1e-6);
}

TEST(SgdMomentumTest, NesterovReference) {
  // Sutskever: v = mu*v + g; p -= lr*(g + mu*v).
  auto opt = Optimizer::Create(
      OptimizerConfig::SgdMomentum(0.1f, 0.9f, /*nesterov=*/true), 1);
  std::vector<float> params = {0.0f};
  std::vector<float> grads = {1.0f};
  opt->Step(params.data(), grads.data(), 1);
  // v=1; p -= 0.1*(1 + 0.9*1) = 0.19.
  EXPECT_NEAR(params[0], -0.19f, 1e-6);
  opt->Step(params.data(), grads.data(), 1);
  // v=1.9; p -= 0.1*(1+1.71)=0.271 => -0.461.
  EXPECT_NEAR(params[0], -0.461f, 1e-6);
}

TEST(SgdMomentumTest, NesterovBeatsPlainOnQuadratic) {
  // Minimize f(x) = 0.5*x^2 from x=10; momentum methods should converge.
  for (bool nesterov : {false, true}) {
    auto opt = Optimizer::Create(
        OptimizerConfig::SgdMomentum(0.05f, 0.9f, nesterov), 1);
    std::vector<float> x = {10.0f};
    for (int i = 0; i < 300; ++i) {
      std::vector<float> g = {x[0]};
      opt->Step(x.data(), g.data(), 1);
    }
    EXPECT_NEAR(x[0], 0.0f, 0.05f) << "nesterov=" << nesterov;
  }
}

TEST(AdamTest, FirstStepReference) {
  // Step 1 with defaults: m = (1-b1)*g, v = (1-b2)*g^2;
  // mhat = g, vhat = g^2; p -= lr * g / (|g| + eps) = lr * sign(g) approx.
  auto config = OptimizerConfig::Adam(0.001f);
  auto opt = Optimizer::Create(config, 2);
  std::vector<float> params = {1.0f, 1.0f};
  std::vector<float> grads = {0.5f, -3.0f};
  opt->Step(params.data(), grads.data(), 2);
  // Direction is -sign(g) * lr (up to eps), magnitude ~ lr.
  EXPECT_NEAR(params[0], 1.0f - 0.001f, 1e-5);
  EXPECT_NEAR(params[1], 1.0f + 0.001f, 1e-5);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  auto opt = Optimizer::Create(OptimizerConfig::Adam(0.05f), 1);
  std::vector<float> x = {4.0f};
  for (int i = 0; i < 500; ++i) {
    std::vector<float> g = {2.0f * x[0]};
    opt->Step(x.data(), g.data(), 1);
  }
  EXPECT_NEAR(x[0], 0.0f, 0.05f);
}

TEST(AdamTest, BiasCorrectionMatchesManualComputation) {
  const float lr = 0.01f;
  const float b1 = 0.9f;
  const float b2 = 0.999f;
  const float eps = 1e-7f;
  auto opt = Optimizer::Create(OptimizerConfig::Adam(lr), 1);
  std::vector<float> p = {0.0f};
  double m = 0.0;
  double v = 0.0;
  double ref = 0.0;
  for (int t = 1; t <= 5; ++t) {
    const float g = 0.3f * static_cast<float>(t);
    std::vector<float> grads = {g};
    opt->Step(p.data(), grads.data(), 1);
    m = b1 * m + (1 - b1) * g;
    v = b2 * v + (1 - b2) * static_cast<double>(g) * g;
    const double mhat = m / (1 - std::pow(b1, t));
    const double vhat = v / (1 - std::pow(b2, t));
    ref -= lr * mhat / (std::sqrt(vhat) + eps);
    EXPECT_NEAR(p[0], ref, 5e-4) << "step " << t;
  }
}

TEST(AdamWTest, DecoupledDecayShrinksWeightsWithZeroGrad) {
  auto opt = Optimizer::Create(OptimizerConfig::AdamW(0.1f, 0.1f), 1);
  std::vector<float> p = {1.0f};
  std::vector<float> g = {0.0f};
  opt->Step(p.data(), g.data(), 1);
  // Adam part leaves p (grad 0), decay multiplies by (1 - lr*wd) = 0.99.
  EXPECT_NEAR(p[0], 0.99f, 1e-5);
}

TEST(AdamWTest, DiffersFromCoupledAdam) {
  auto adamw = Optimizer::Create(OptimizerConfig::AdamW(0.01f, 0.1f), 1);
  auto adam_config = OptimizerConfig::Adam(0.01f);
  adam_config.weight_decay = 0.1f;
  auto adam = Optimizer::Create(adam_config, 1);
  std::vector<float> pw = {1.0f};
  std::vector<float> pa = {1.0f};
  std::vector<float> g = {0.5f};
  for (int i = 0; i < 10; ++i) {
    adamw->Step(pw.data(), g.data(), 1);
    adam->Step(pa.data(), g.data(), 1);
  }
  EXPECT_NE(pw[0], pa[0]);
}

TEST(OptimizerTest, ResetClearsState) {
  auto opt = Optimizer::Create(
      OptimizerConfig::SgdMomentum(0.1f, 0.9f, false), 1);
  std::vector<float> p = {0.0f};
  std::vector<float> g = {1.0f};
  opt->Step(p.data(), g.data(), 1);
  opt->Reset();
  p[0] = 0.0f;
  opt->Step(p.data(), g.data(), 1);
  // After reset the first step behaves like a fresh optimizer.
  EXPECT_NEAR(p[0], -0.1f, 1e-6);
}

TEST(OptimizerTest, AdamResetRestartsBiasCorrection) {
  auto opt = Optimizer::Create(OptimizerConfig::Adam(0.001f), 1);
  std::vector<float> p = {0.0f};
  std::vector<float> g = {1.0f};
  opt->Step(p.data(), g.data(), 1);
  const float after_first = p[0];
  opt->Reset();
  p[0] = 0.0f;
  opt->Step(p.data(), g.data(), 1);
  EXPECT_FLOAT_EQ(p[0], after_first);
}

TEST(OptimizerDeathTest, InvalidConfigDies) {
  EXPECT_DEATH(Optimizer::Create(OptimizerConfig::Sgd(-1.0f), 4),
               "learning_rate");
}

}  // namespace
}  // namespace fedra
