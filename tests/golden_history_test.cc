// Golden-history parity tests for the shared-graph / arena refactor.
//
// The hard guarantee of the PR that introduced ModelGraph + WorkerArena is
// that execution is *bit-identical* to the old one-Model-per-worker trainer:
// for a fixed seed, DistributedTrainer::Run and AsyncFdaTrainer::Run must
// produce the same EvalPoint history (step, accuracies, bytes, sync_count)
// they produced before the refactor, with parallel_workers on or off.
//
// The GOLDEN arrays below were captured from the pre-refactor trainer
// (commit c11813b) by running this test with FEDRA_GOLDEN_PRINT=1; the
// refactored trainer must keep reproducing them. Integer fields compare
// exactly; accuracies are exact sample-count ratios so they compare exactly
// too; simulated seconds compare at 1e-9 relative tolerance (double sums
// whose last bits may legitimately differ across FMA-contraction choices of
// other toolchains).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "core/async_fda.h"
#include "core/fda_policy.h"
#include "data/synth.h"
#include "nn/zoo.h"
#include "sim/topology_tree.h"
#include "tensor/simd_dispatch.h"

namespace fedra {
namespace {

// The GOLDEN arrays are bit-exact for one accumulation pattern. Pin the
// generic SIMD level so they hold on every machine regardless of which
// intrinsics tier cpuid would pick (or what FEDRA_SIMD says): kGeneric is
// always compiled in, and kScalar/kGeneric share the canonical portable
// kernels bit-for-bit (docs/determinism.md, "ISA levels").
[[maybe_unused]] const bool kSimdLevelPinned = [] {
  simd::SetLevel(simd::Level::kGeneric);
  return true;
}();

struct GoldenPoint {
  size_t step;
  double train_accuracy;
  double test_accuracy;
  uint64_t bytes;
  uint64_t sync_count;
  double sim_seconds;
};

void PrintHistory(const char* name, const std::vector<EvalPoint>& history) {
  std::printf("const GoldenPoint k%s[] = {\n", name);
  for (const EvalPoint& p : history) {
    std::printf("    {%zu, %.17g, %.17g, %lluull, %lluull, %.17g},\n", p.step,
                p.train_accuracy, p.test_accuracy,
                static_cast<unsigned long long>(p.bytes),
                static_cast<unsigned long long>(p.sync_count), p.sim_seconds);
  }
  std::printf("};\n");
}

bool GoldenPrintMode() {
  const char* env = std::getenv("FEDRA_GOLDEN_PRINT");
  return env != nullptr && env[0] == '1';
}

template <size_t N>
void ExpectHistoryMatches(const char* name,
                          const std::vector<EvalPoint>& history,
                          const GoldenPoint (&golden)[N]) {
  if (GoldenPrintMode()) {
    PrintHistory(name, history);
    return;
  }
  ASSERT_EQ(history.size(), N) << name;
  for (size_t i = 0; i < N; ++i) {
    SCOPED_TRACE(::testing::Message() << name << " point " << i);
    EXPECT_EQ(history[i].step, golden[i].step);
    EXPECT_DOUBLE_EQ(history[i].train_accuracy, golden[i].train_accuracy);
    EXPECT_DOUBLE_EQ(history[i].test_accuracy, golden[i].test_accuracy);
    EXPECT_EQ(history[i].bytes, golden[i].bytes);
    EXPECT_EQ(history[i].sync_count, golden[i].sync_count);
    EXPECT_NEAR(history[i].sim_seconds, golden[i].sim_seconds,
                1e-9 * std::max(1.0, golden[i].sim_seconds));
  }
}

/// Every history must be bit-identical between the two runs (the refactor's
/// determinism claim: each worker writes only its own slab slice).
void ExpectHistoriesBitIdentical(const std::vector<EvalPoint>& a,
                                 const std::vector<EvalPoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(::testing::Message() << "point " << i);
    EXPECT_EQ(a[i].step, b[i].step);
    EXPECT_EQ(a[i].epoch, b[i].epoch);
    EXPECT_EQ(a[i].train_accuracy, b[i].train_accuracy);
    EXPECT_EQ(a[i].test_accuracy, b[i].test_accuracy);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
    EXPECT_EQ(a[i].sync_count, b[i].sync_count);
    EXPECT_EQ(a[i].sim_seconds, b[i].sim_seconds);
  }
}

SynthImageData SmallMnistLike() {
  SynthImageConfig config = MnistLikeConfig();
  config.num_train = 512;
  config.num_test = 256;
  config.image_size = 16;
  auto data = GenerateSynthImages(config);
  FEDRA_CHECK(data.ok());
  return std::move(data).value();
}

// Captured pre-refactor (see file comment).
const GoldenPoint kMlpLinearFda[] = {
    {20, 0.484375, 0.6796875, 103328ull, 1ull, 0.20011976114285718},
    {40, 0.7734375, 0.8046875, 206656ull, 2ull, 0.40023952228571447},
    {60, 0.9375, 0.90625, 309984ull, 3ull, 0.6003592834285717},
};

const GoldenPoint kLenetSync[] = {
    {5, 0.328125, 0.25, 855440ull, 5ull, 0.050147205714285714},
    {10, 0.625, 0.671875, 1710880ull, 10ull, 0.10029441142857141},
};

const GoldenPoint kMlpFedAvg[] = {
    {8, 0.2734375, 0.296875, 0ull, 0ull, 0.080000000000000002},
    {16, 0.4609375, 0.5390625, 51344ull, 1ull, 0.16001233485714286},
};

const GoldenPoint kMlpAsync[] = {
    {10, 0.4609375, 0.484375, 77256ull, 1ull, 0.11001600228571427},
    {20, 0.578125, 0.6328125, 77496ull, 1ull, 0.21001600228571435},
    {30, 0.6953125, 0.75, 154752ull, 2ull, 0.31003200457142871},
    {40, 0.7578125, 0.828125, 154992ull, 2ull, 0.4100320045714288},
    {50, 0.9140625, 0.859375, 232248ull, 3ull, 0.51004800685714313},
};

TrainerConfig MlpConfig(int num_workers) {
  TrainerConfig config;
  config.num_workers = num_workers;
  config.batch_size = 16;
  config.local_optimizer = OptimizerConfig::Adam(0.002f);
  config.seed = 11;
  config.max_steps = 60;
  config.eval_every_steps = 20;
  config.eval_subset = 128;
  return config;
}

TEST(GoldenHistoryTest, MlpLinearFdaSequentialAndParallel) {
  SynthImageData data = SmallMnistLike();
  auto factory = [] { return zoo::Mlp(16 * 16, {24}, 10); };
  auto run_with = [&](bool parallel) {
    TrainerConfig config = MlpConfig(4);
    config.parallel_workers = parallel;
    DistributedTrainer trainer(factory, data.train, data.test, config);
    auto policy = MakeSyncPolicy(AlgorithmConfig::LinearFda(0.5),
                                 trainer.model_dim());
    FEDRA_CHECK(policy.ok());
    auto result = trainer.Run(policy->get());
    FEDRA_CHECK(result.ok());
    return result->history;
  };
  std::vector<EvalPoint> sequential = run_with(false);
  std::vector<EvalPoint> parallel = run_with(true);
  ExpectHistoryMatches("MlpLinearFda", sequential, kMlpLinearFda);
  ExpectHistoriesBitIdentical(sequential, parallel);
}

TEST(GoldenHistoryTest, LenetSynchronous) {
  SynthImageData data = SmallMnistLike();
  auto factory = [] { return zoo::LeNet5(1, 16, 10); };
  TrainerConfig config;
  config.num_workers = 2;
  config.batch_size = 8;
  config.local_optimizer = OptimizerConfig::SgdMomentum(0.05f, 0.9f, true);
  config.seed = 7;
  config.max_steps = 10;
  config.eval_every_steps = 5;
  config.eval_subset = 64;
  DistributedTrainer trainer(factory, data.train, data.test, config);
  auto policy = MakeSyncPolicy(AlgorithmConfig::Synchronous(),
                               trainer.model_dim());
  ASSERT_TRUE(policy.ok());
  auto result = trainer.Run(policy->get());
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectHistoryMatches("LenetSync", result->history, kLenetSync);
}

TEST(GoldenHistoryTest, MlpFedAvg) {
  SynthImageData data = SmallMnistLike();
  auto factory = [] { return zoo::Mlp(16 * 16, {24}, 10); };
  TrainerConfig config;
  config.num_workers = 2;
  config.batch_size = 16;
  config.local_optimizer = OptimizerConfig::Sgd(0.05f);
  config.seed = 13;
  config.max_steps = 16;
  config.eval_every_steps = 8;
  config.eval_subset = 128;
  DistributedTrainer trainer(factory, data.train, data.test, config);
  auto policy = MakeSyncPolicy(AlgorithmConfig::FedAvg(1),
                               trainer.model_dim());
  ASSERT_TRUE(policy.ok());
  auto result = trainer.Run(policy->get());
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectHistoryMatches("MlpFedAvg", result->history, kMlpFedAvg);
}

TEST(GoldenHistoryTest, MlpAsyncFda) {
  SynthImageData data = SmallMnistLike();
  auto factory = [] { return zoo::Mlp(16 * 16, {24}, 10); };
  TrainerConfig config = MlpConfig(3);
  config.eval_every_steps = 10;
  config.straggler = StragglerModel::None(0.01);
  AsyncFdaConfig async_config;
  async_config.theta = 0.5;
  async_config.monitor.kind = MonitorKind::kLinear;
  async_config.max_total_worker_steps = 150;
  AsyncFdaTrainer trainer(factory, data.train, data.test, config,
                          async_config);
  auto result = trainer.Run();
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectHistoryMatches("MlpAsync", result->base.history, kMlpAsync);
}

// Captured at the parity-verified introduction of the hierarchical FDA
// scheduler (TopologyTree PR) with FEDRA_GOLDEN_PRINT=1: a 3-tier
// device->site->cloud run whose escalation decisions — which steps average
// at which tier and which pay the uplink — are encoded in the bytes and
// sync_count columns. A refactor that silently changes the scheduler's
// tier decisions changes these numbers.
const GoldenPoint kMlpHier3Tier[] = {
    {20, 0.5, 0.6953125, 3030816ull, 1ull, 0.42608227840000024},
    {40, 0.78125, 0.8203125, 7088512ull, 1ull, 0.81832862720000166},
    {60, 0.9453125, 0.8984375, 9297792ull, 2ull, 1.2237536511999991},
};

TEST(GoldenHistoryTest, ThreeTierHierarchicalFdaSequentialAndParallel) {
  SynthImageData data = SmallMnistLike();
  auto factory = [] { return zoo::Mlp(16 * 16, {24}, 10); };
  auto run_with = [&](bool parallel) {
    TrainerConfig config = MlpConfig(8);
    config.parallel_workers = parallel;
    config.topology = TopologyTree::DeviceSiteCloud(2, 2);
    DistributedTrainer trainer(factory, data.train, data.test, config);
    HierarchicalFdaConfig policy_config;
    policy_config.monitor.kind = MonitorKind::kLinear;
    policy_config.theta_by_depth = {1.2, 0.5, 0.2};
    auto policy =
        MakeHierarchicalFdaPolicy(policy_config, trainer.model_dim());
    FEDRA_CHECK(policy.ok());
    auto result = trainer.Run(policy->get());
    FEDRA_CHECK(result.ok());
    return result->history;
  };
  std::vector<EvalPoint> sequential = run_with(false);
  std::vector<EvalPoint> parallel = run_with(true);
  ExpectHistoryMatches("MlpHier3Tier", sequential, kMlpHier3Tier);
  ExpectHistoriesBitIdentical(sequential, parallel);
}

/// Composite coverage (BatchNorm, Dropout, DenseBlock, transitions) under
/// the shared graph: parallel and sequential worker execution must be
/// bit-identical. Runtime-compared (no hard-coded floats) so it holds on
/// any toolchain.
TEST(GoldenHistoryTest, DenseNetParallelMatchesSequentialBitExact) {
  SynthImageConfig synth = MnistLikeConfig();
  synth.num_train = 64;
  synth.num_test = 32;
  synth.image_size = 16;
  auto data = GenerateSynthImages(synth);
  ASSERT_TRUE(data.ok());
  auto factory = [] { return zoo::DenseNet121Lite(1, 16, 10); };
  auto run_with = [&](bool parallel) {
    TrainerConfig config;
    config.num_workers = 2;
    config.batch_size = 4;
    config.local_optimizer = OptimizerConfig::SgdMomentum(0.01f, 0.9f, true);
    config.seed = 5;
    config.max_steps = 4;
    config.eval_every_steps = 2;
    config.eval_subset = 32;
    config.parallel_workers = parallel;
    DistributedTrainer trainer(factory, data->train, data->test, config);
    auto policy = MakeSyncPolicy(AlgorithmConfig::LinearFda(0.1),
                                 trainer.model_dim());
    FEDRA_CHECK(policy.ok());
    auto result = trainer.Run(policy->get());
    FEDRA_CHECK(result.ok());
    return result->history;
  };
  std::vector<EvalPoint> sequential = run_with(false);
  std::vector<EvalPoint> parallel = run_with(true);
  ASSERT_FALSE(sequential.empty());
  ExpectHistoriesBitIdentical(sequential, parallel);
}

// ---------------------------------------------------------------------------
// Fleet parity: with population == cohort_size == K the fleet layer (paged
// ClientStateStore + CohortSampler + per-round rotation) must be a bitwise
// no-op — every rotation samples the identity cohort with zero rng draws,
// resident slots stay sticky with zero float roundtrips, and the population
// variance correction short-circuits. The fleet runs below must keep
// reproducing the SAME golden arrays as the resident-cohort runs above.

TEST(GoldenHistoryTest, FleetPopulationEqualsCohortMatchesGolden) {
  SynthImageData data = SmallMnistLike();
  auto factory = [] { return zoo::Mlp(16 * 16, {24}, 10); };
  TrainerConfig config = MlpConfig(4);
  config.population = 4;
  config.cohort_size = 4;
  config.cohort_steps = 1;
  DistributedTrainer trainer(factory, data.train, data.test, config);
  auto policy = MakeSyncPolicy(AlgorithmConfig::LinearFda(0.5),
                               trainer.model_dim());
  ASSERT_TRUE(policy.ok());
  auto result = trainer.Run(policy->get());
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectHistoryMatches("MlpLinearFdaFleet", result->history, kMlpLinearFda);
  EXPECT_EQ(result->comm.check_in_syncs, 0ull);
}

TEST(GoldenHistoryTest, FleetHierarchicalPopulationEqualsCohortMatchesGolden) {
  SynthImageData data = SmallMnistLike();
  auto factory = [] { return zoo::Mlp(16 * 16, {24}, 10); };
  TrainerConfig config = MlpConfig(8);
  config.topology = TopologyTree::DeviceSiteCloud(2, 2);
  config.population = 8;
  config.cohort_size = 8;
  config.cohort_steps = 5;  // sparse rotations are no-ops too
  DistributedTrainer trainer(factory, data.train, data.test, config);
  HierarchicalFdaConfig policy_config;
  policy_config.monitor.kind = MonitorKind::kLinear;
  policy_config.theta_by_depth = {1.2, 0.5, 0.2};
  auto policy = MakeHierarchicalFdaPolicy(policy_config, trainer.model_dim());
  ASSERT_TRUE(policy.ok());
  auto result = trainer.Run(policy->get());
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectHistoryMatches("MlpHier3TierFleet", result->history, kMlpHier3Tier);
}

TEST(GoldenHistoryTest, FleetAsyncPopulationEqualsCohortMatchesGolden) {
  SynthImageData data = SmallMnistLike();
  auto factory = [] { return zoo::Mlp(16 * 16, {24}, 10); };
  TrainerConfig config = MlpConfig(3);
  config.eval_every_steps = 10;
  config.straggler = StragglerModel::None(0.01);
  config.population = 3;
  config.cohort_size = 3;
  AsyncFdaConfig async_config;
  async_config.theta = 0.5;
  async_config.monitor.kind = MonitorKind::kLinear;
  async_config.max_total_worker_steps = 150;
  AsyncFdaTrainer trainer(factory, data.train, data.test, config,
                          async_config);
  auto result = trainer.Run();
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectHistoryMatches("MlpAsyncFleet", result->base.history, kMlpAsync);
}

/// Fault chains must also agree at population == K: the fleet constructs a
/// population-sized injector with an explicit client->link map, which has to
/// reproduce the resident constructor's chains bit-for-bit (same crash and
/// outage schedule, same availability the sampler reads). Runtime-compared
/// resident-vs-fleet pair; availability-weighted sampling covers the
/// sampler's fault-reading path.
TEST(GoldenHistoryTest, FleetFaultedPopulationEqualsCohortBitIdentical) {
  SynthImageData data = SmallMnistLike();
  auto factory = [] { return zoo::Mlp(16 * 16, {24}, 10); };
  auto run_with = [&](bool fleet) {
    TrainerConfig config = MlpConfig(4);
    config.faults.worker_mttf_rounds = 4.0;
    config.faults.worker_mttr_rounds = 2.0;
    config.faults.message_loss_prob = 0.15;
    if (fleet) {
      config.population = 4;
      config.cohort_size = 4;
      config.cohort_schedule = CohortScheduleKind::kAvailability;
    }
    DistributedTrainer trainer(factory, data.train, data.test, config);
    auto policy = MakeSyncPolicy(AlgorithmConfig::LinearFda(0.5),
                                 trainer.model_dim());
    FEDRA_CHECK(policy.ok());
    auto result = trainer.Run(policy->get());
    FEDRA_CHECK(result.ok());
    return std::move(result).value();
  };
  TrainResult resident = run_with(false);
  TrainResult fleet = run_with(true);
  ASSERT_FALSE(resident.history.empty());
  ExpectHistoriesBitIdentical(resident.history, fleet.history);
  EXPECT_EQ(resident.rejoin_count, fleet.rejoin_count);
  EXPECT_EQ(resident.comm.bytes_total, fleet.comm.bytes_total);
  EXPECT_EQ(fleet.comm.check_in_syncs, 0ull);
}

}  // namespace
}  // namespace fedra
