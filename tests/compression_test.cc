// Tests for the synchronization-compression substrate (paper §2
// compatibility), FedProx's proximal term, and the post-local SGD
// schedule.

#include <cmath>

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "core/compression.h"
#include "data/synth.h"
#include "nn/zoo.h"
#include "tensor/vec_ops.h"
#include "util/rng.h"

namespace fedra {
namespace {

std::vector<float> RandomVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) {
    x = rng.NextGaussian(0.0f, 1.0f);
  }
  return v;
}

// ---------------------------------------------------------------- configs

TEST(CompressionConfigTest, FactoriesAndValidation) {
  EXPECT_EQ(CompressionConfig::None().kind, CompressionKind::kNone);
  EXPECT_EQ(CompressionConfig::Quantize8().kind,
            CompressionKind::kQuantize8);
  EXPECT_EQ(CompressionConfig::TopK(0.1).kind, CompressionKind::kTopK);
  EXPECT_TRUE(CompressionConfig::TopK(0.5).Validate().ok());
  EXPECT_FALSE(CompressionConfig::TopK(0.0).Validate().ok());
  EXPECT_FALSE(CompressionConfig::TopK(1.5).Validate().ok());
}

TEST(CompressionConfigTest, ToStringNamesCodec) {
  EXPECT_EQ(CompressionConfig::None().ToString(), "none");
  EXPECT_EQ(CompressionConfig::Quantize8().ToString(), "q8");
  EXPECT_EQ(CompressionConfig::Quantize4().ToString(), "q4");
  EXPECT_NE(CompressionConfig::TopK(0.05).ToString().find("top"),
            std::string::npos);
}

// -------------------------------------------------------------- wire size

TEST(CompressionTest, WireBytesShrink) {
  const size_t n = 10000;
  SyncCompressor none(CompressionConfig::None(), n, 1);
  SyncCompressor q8(CompressionConfig::Quantize8(), n, 1);
  SyncCompressor q4(CompressionConfig::Quantize4(), n, 1);
  SyncCompressor topk(CompressionConfig::TopK(0.05), n, 1);
  EXPECT_EQ(none.WireBytes(n), n * 4);
  EXPECT_LT(q8.WireBytes(n), none.WireBytes(n) / 3);
  EXPECT_LT(q4.WireBytes(n), q8.WireBytes(n));
  EXPECT_LT(topk.WireBytes(n), none.WireBytes(n) / 2);
}

// ------------------------------------------------------------ quantization

TEST(CompressionTest, Quantize8BoundsElementError) {
  const size_t n = 4096;
  auto v = RandomVec(n, 1);
  auto original = v;
  SyncCompressor compressor(CompressionConfig::Quantize8(false), n, 1);
  compressor.CompressInPlace(0, v.data(), n);
  float max_abs = 0.0f;
  for (float x : original) {
    max_abs = std::max(max_abs, std::fabs(x));
  }
  const float step = max_abs / 127.0f;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_LE(std::fabs(v[i] - original[i]), 0.5f * step + 1e-6f);
  }
}

TEST(CompressionTest, Quantize4CoarserThanQuantize8) {
  const size_t n = 4096;
  auto v8 = RandomVec(n, 2);
  auto v4 = v8;
  auto original = v8;
  SyncCompressor q8(CompressionConfig::Quantize8(false), n, 1);
  SyncCompressor q4(CompressionConfig::Quantize4(false), n, 1);
  q8.CompressInPlace(0, v8.data(), n);
  q4.CompressInPlace(0, v4.data(), n);
  const double err8 = [&] {
    double e = 0;
    for (size_t i = 0; i < n; ++i) {
      e += std::fabs(v8[i] - original[i]);
    }
    return e;
  }();
  const double err4 = [&] {
    double e = 0;
    for (size_t i = 0; i < n; ++i) {
      e += std::fabs(v4[i] - original[i]);
    }
    return e;
  }();
  EXPECT_GT(err4, 2.0 * err8);
}

TEST(CompressionTest, QuantizeZeroVectorIsNoop) {
  std::vector<float> zeros(128, 0.0f);
  SyncCompressor q8(CompressionConfig::Quantize8(false), 128, 1);
  q8.CompressInPlace(0, zeros.data(), 128);
  for (float x : zeros) {
    EXPECT_EQ(x, 0.0f);
  }
}

// ------------------------------------------------------------------ top-k

TEST(CompressionTest, TopKKeepsLargestMagnitudes) {
  std::vector<float> v = {0.1f, -5.0f, 0.2f, 3.0f, -0.05f, 0.01f,
                          2.0f, -0.3f, 0.0f, 1.0f};
  SyncCompressor topk(CompressionConfig::TopK(0.3, false), v.size(), 1);
  topk.CompressInPlace(0, v.data(), v.size());
  // 3 coordinates survive: -5, 3, 2.
  EXPECT_FLOAT_EQ(v[1], -5.0f);
  EXPECT_FLOAT_EQ(v[3], 3.0f);
  EXPECT_FLOAT_EQ(v[6], 2.0f);
  int nonzero = 0;
  for (float x : v) {
    nonzero += x != 0.0f;
  }
  EXPECT_EQ(nonzero, 3);
}

TEST(CompressionTest, TopKAlwaysKeepsAtLeastOne) {
  std::vector<float> v = {1.0f, 2.0f, 3.0f};
  SyncCompressor topk(CompressionConfig::TopK(0.01, false), 3, 1);
  topk.CompressInPlace(0, v.data(), 3);
  int nonzero = 0;
  for (float x : v) {
    nonzero += x != 0.0f;
  }
  EXPECT_EQ(nonzero, 1);
  EXPECT_FLOAT_EQ(v[2], 3.0f);
}

// ---------------------------------------------------------- error feedback

TEST(CompressionTest, ErrorFeedbackCarriesResidual) {
  const size_t n = 64;
  SyncCompressor compressor(CompressionConfig::TopK(0.1, true), n, 2);
  auto v = RandomVec(n, 3);
  EXPECT_EQ(compressor.ResidualEnergy(0), 0.0);
  auto copy = v;
  compressor.CompressInPlace(0, copy.data(), n);
  EXPECT_GT(compressor.ResidualEnergy(0), 0.0);
  // The other worker's residual is untouched.
  EXPECT_EQ(compressor.ResidualEnergy(1), 0.0);
  compressor.Reset();
  EXPECT_EQ(compressor.ResidualEnergy(0), 0.0);
}

TEST(CompressionTest, ErrorFeedbackBacklogStaysBounded) {
  // Feed the same vector repeatedly through an aggressive top-k
  // compressor. By the EF identity, cumulative-transmitted minus
  // cumulative-input equals exactly minus the final residual, so "nothing
  // is permanently lost" == "the residual stays bounded over rounds"
  // (without EF, the per-round loss would accumulate linearly).
  const size_t n = 32;
  auto input = RandomVec(n, 4);
  SyncCompressor with_ef(CompressionConfig::TopK(0.1, true), n, 1);
  const double input_energy = vec::SquaredNorm(input.data(), n);
  double energy_at_30 = 0.0;
  for (int round = 1; round <= 60; ++round) {
    auto payload = input;
    with_ef.CompressInPlace(0, payload.data(), n);
    if (round == 30) {
      energy_at_30 = with_ef.ResidualEnergy(0);
    }
  }
  const double energy_at_60 = with_ef.ResidualEnergy(0);
  // Bounded backlog: doubling the horizon must not keep growing the
  // residual (linear growth would quadruple the energy).
  EXPECT_GT(energy_at_30, 0.0);
  EXPECT_LT(energy_at_60, 2.0 * energy_at_30 + 1e-9);
  // And the backlog is comparable to a few copies of the input, far below
  // the un-fed-back cumulative loss (~60^2 x input energy of the dropped
  // 90% mass).
  EXPECT_LT(energy_at_60, 200.0 * input_energy);
}

// ----------------------------------------------------- compressed training

TEST(CompressionIntegrationTest, CompressedSyncStillLearnsAndSavesBytes) {
  SynthImageConfig data_config = MnistLikeConfig();
  data_config.num_train = 512;
  data_config.num_test = 256;
  auto data = GenerateSynthImages(data_config);
  ASSERT_TRUE(data.ok());
  ModelFactory factory = [] { return zoo::Mlp(16 * 16, {24}, 10); };

  auto run = [&](CompressionConfig compression) {
    TrainerConfig config;
    config.num_workers = 4;
    config.batch_size = 16;
    config.local_optimizer = OptimizerConfig::Adam(0.002f);
    config.max_steps = 120;
    config.eval_every_steps = 40;
    config.eval_subset = 128;
    config.seed = 5;
    config.sync_compression = compression;
    DistributedTrainer trainer(factory, data->train, data->test, config);
    auto policy = MakeSyncPolicy(AlgorithmConfig::LinearFda(0.2),
                                 trainer.model_dim());
    FEDRA_CHECK(policy.ok());
    auto result = trainer.Run(policy->get());
    FEDRA_CHECK(result.ok());
    return *result;
  };

  TrainResult plain = run(CompressionConfig::None());
  TrainResult q8 = run(CompressionConfig::Quantize8());
  ASSERT_GT(plain.total_syncs, 0u);
  ASSERT_GT(q8.total_syncs, 0u);
  // Bytes per sync shrink ~4x under q8.
  const double plain_per_sync =
      static_cast<double>(plain.comm.bytes_model_sync) /
      static_cast<double>(plain.total_syncs);
  const double q8_per_sync =
      static_cast<double>(q8.comm.bytes_model_sync) /
      static_cast<double>(q8.total_syncs);
  EXPECT_LT(q8_per_sync, 0.3 * plain_per_sync);
  // Learning survives lossy sync.
  EXPECT_GT(q8.final_test_accuracy, 0.5);
  EXPECT_GT(q8.final_test_accuracy, plain.final_test_accuracy - 0.15);
}

TEST(CompressionIntegrationTest, WorkersAgreeAfterCompressedSync) {
  // After a compressed synchronization every worker holds the identical
  // model (the decompressed average), exactly as in the plain path.
  SynthImageConfig data_config = MnistLikeConfig();
  data_config.num_train = 256;
  data_config.num_test = 64;
  auto data = GenerateSynthImages(data_config);
  ASSERT_TRUE(data.ok());
  ModelFactory factory = [] { return zoo::Mlp(16 * 16, {8}, 10); };
  TrainerConfig config;
  config.num_workers = 3;
  config.batch_size = 16;
  config.local_optimizer = OptimizerConfig::Adam(0.002f);
  config.max_steps = 10;
  config.eval_every_steps = 5;
  config.seed = 6;
  config.sync_compression = CompressionConfig::TopK(0.2);
  DistributedTrainer trainer(factory, data->train, data->test, config);
  // Synchronous => compressed sync every step; determinism test doubles as
  // an agreement test because the eval model (average) matches workers.
  auto policy = MakeSyncPolicy(AlgorithmConfig::Synchronous(),
                               trainer.model_dim());
  ASSERT_TRUE(policy.ok());
  auto a = trainer.Run(policy->get());
  ASSERT_TRUE(a.ok());
  auto policy2 = MakeSyncPolicy(AlgorithmConfig::Synchronous(),
                                trainer.model_dim());
  auto b = trainer.Run(policy2->get());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->final_test_accuracy, b->final_test_accuracy);
  EXPECT_EQ(a->comm.bytes_total, b->comm.bytes_total);
}

// ---------------------------------------------------------------- FedProx

TEST(FedProxTest, ProximalTermShrinksDrift) {
  SynthImageConfig data_config = MnistLikeConfig();
  data_config.num_train = 512;
  data_config.num_test = 128;
  auto data = GenerateSynthImages(data_config);
  ASSERT_TRUE(data.ok());
  ModelFactory factory = [] { return zoo::Mlp(16 * 16, {16}, 10); };

  auto drift_after = [&](float mu) {
    TrainerConfig config;
    config.num_workers = 4;
    config.batch_size = 16;
    config.local_optimizer = OptimizerConfig::Sgd(0.05f);
    config.max_steps = 60;
    config.eval_every_steps = 60;
    config.eval_subset = 128;
    config.seed = 7;
    config.fedprox_mu = mu;
    config.partition = PartitionConfig::SortedFraction(0.8);
    DistributedTrainer trainer(factory, data->train, data->test, config);
    // Never sync: measure pure local drift (variance estimate history).
    auto policy = MakeSyncPolicy(AlgorithmConfig::ExactFda(1e18),
                                 trainer.model_dim());
    FEDRA_CHECK(policy.ok());
    auto result = trainer.Run(policy->get());
    FEDRA_CHECK(result.ok());
    // State traffic equals (d+1) floats/step regardless; use final
    // accuracy gap as a proxy? No: compare comm-free metric — the exact
    // monitor's last estimate is not exposed here, so instead return the
    // variance proxy: none. Use total syncs==0 sanity and return
    // final_train accuracy drift measure via history.
    FEDRA_CHECK(result->total_syncs == 0);
    return *result;
  };
  // With a strong proximal pull the worker models stay closer to the
  // anchor; this manifests as *lower* variance, which we can observe via
  // the FDA policy: with the same finite theta, mu > 0 must produce no
  // MORE syncs than mu = 0.
  auto syncs_with = [&](float mu) {
    TrainerConfig config;
    config.num_workers = 4;
    config.batch_size = 16;
    config.local_optimizer = OptimizerConfig::Sgd(0.05f);
    config.max_steps = 80;
    config.eval_every_steps = 80;
    config.eval_subset = 128;
    config.seed = 7;
    config.fedprox_mu = mu;
    config.partition = PartitionConfig::SortedFraction(0.8);
    DistributedTrainer trainer(factory, data->train, data->test, config);
    auto policy = MakeSyncPolicy(AlgorithmConfig::ExactFda(0.02),
                                 trainer.model_dim());
    FEDRA_CHECK(policy.ok());
    auto result = trainer.Run(policy->get());
    FEDRA_CHECK(result.ok());
    return result->total_syncs;
  };
  (void)drift_after;
  EXPECT_LE(syncs_with(1.0f), syncs_with(0.0f));
}

TEST(FedProxTest, NegativeMuRejected) {
  SynthImageConfig data_config = MnistLikeConfig();
  data_config.num_train = 64;
  data_config.num_test = 32;
  auto data = GenerateSynthImages(data_config);
  ASSERT_TRUE(data.ok());
  TrainerConfig config;
  config.fedprox_mu = -1.0f;
  DistributedTrainer trainer([] { return zoo::Mlp(16 * 16, {4}, 10); },
                             data->train, data->test, config);
  SynchronousPolicy policy;
  EXPECT_FALSE(trainer.Run(&policy).ok());
}

// ------------------------------------------------------------- post-local

TEST(PostLocalScheduleTest, BspPhaseThenLocal) {
  TauSchedule schedule = TauSchedule::PostLocal(16, 3);
  EXPECT_EQ(schedule.TauForRound(0), 1u);
  EXPECT_EQ(schedule.TauForRound(2), 1u);
  EXPECT_EQ(schedule.TauForRound(3), 16u);
  EXPECT_EQ(schedule.TauForRound(100), 16u);
  EXPECT_NE(schedule.ToString().find("post-local"), std::string::npos);
}

}  // namespace
}  // namespace fedra
