// Tests for the AMS sketch library: hash family properties, sketch
// linearity (the property Theorem 3.1 relies on), and the (1 +- eps)
// accuracy/confidence guarantees of the M2 estimator.

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "sketch/ams_sketch.h"
#include "sketch/hashing.h"
#include "tensor/vec_ops.h"
#include "util/rng.h"

namespace fedra {
namespace {

// ---------------------------------------------------------------- hashing

TEST(HashingTest, MersenneModIsCorrect) {
  const uint64_t p = (1ULL << 61) - 1;
  EXPECT_EQ(MersenneMod(0), 0u);
  EXPECT_EQ(MersenneMod(p), 0u);
  EXPECT_EQ(MersenneMod(p + 1), 1u);
  EXPECT_EQ(MersenneMod(static_cast<unsigned __int128>(p) * 5 + 3), 3u);
}

TEST(HashingTest, FourWiseHashIsDeterministic) {
  FourWiseHash h1(42);
  FourWiseHash h2(42);
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(h1.Hash(key), h2.Hash(key));
  }
}

TEST(HashingTest, DifferentSeedsGiveDifferentHashes) {
  FourWiseHash h1(1);
  FourWiseHash h2(2);
  int equal = 0;
  for (uint64_t key = 0; key < 128; ++key) {
    equal += h1.Hash(key) == h2.Hash(key);
  }
  EXPECT_LT(equal, 4);
}

TEST(HashingTest, SignsAreBalanced) {
  FourWiseHash h(7);
  int pos = 0;
  const int n = 20000;
  for (int key = 0; key < n; ++key) {
    pos += h.Sign(static_cast<uint64_t>(key)) > 0;
  }
  EXPECT_NEAR(static_cast<double>(pos) / n, 0.5, 0.02);
}

TEST(HashingTest, PairwiseSignProductsAreBalanced) {
  // 4-wise independence implies pairwise: E[s_i s_j] ~ 0 for i != j.
  FourWiseHash h(11);
  double sum = 0.0;
  const int n = 20000;
  for (int key = 0; key < n; ++key) {
    sum += h.Sign(static_cast<uint64_t>(key)) *
           h.Sign(static_cast<uint64_t>(key) + 1);
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
}

TEST(HashingTest, BucketsInRangeAndSpread) {
  PairwiseHash h(3);
  const uint32_t buckets = 37;
  std::vector<int> counts(buckets, 0);
  const int n = 37000;
  for (int key = 0; key < n; ++key) {
    const uint32_t b = h.Bucket(static_cast<uint64_t>(key), buckets);
    ASSERT_LT(b, buckets);
    ++counts[b];
  }
  // Each bucket should get roughly n/buckets = 1000 keys.
  for (int count : counts) {
    EXPECT_GT(count, 700);
    EXPECT_LT(count, 1300);
  }
}

TEST(HashFamilyTest, PrecomputedTablesMatchDirectHashing) {
  const uint64_t seed = 99;
  AmsHashFamily family(3, 16, 100, seed);
  EXPECT_EQ(family.rows(), 3);
  EXPECT_EQ(family.cols(), 16);
  EXPECT_EQ(family.dim(), 100u);
  for (int r = 0; r < 3; ++r) {
    for (size_t j = 0; j < 100; ++j) {
      ASSERT_LT(family.bucket(r, j), 16u);
      const float s = family.sign(r, j);
      ASSERT_TRUE(s == 1.0f || s == -1.0f);
    }
  }
}

TEST(HashFamilyTest, SameSeedSameFamily) {
  AmsHashFamily a(3, 8, 64, 5);
  AmsHashFamily b(3, 8, 64, 5);
  for (int r = 0; r < 3; ++r) {
    for (size_t j = 0; j < 64; ++j) {
      EXPECT_EQ(a.bucket(r, j), b.bucket(r, j));
      EXPECT_EQ(a.sign(r, j), b.sign(r, j));
    }
  }
}

// ----------------------------------------------------------------- sketch

std::vector<float> RandomVector(size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(dim);
  for (auto& x : v) {
    x = rng.NextGaussian(0.0f, 1.0f);
  }
  return v;
}

TEST(AmsSketchTest, EmptySketchEstimatesZero) {
  auto family = AmsHashFamily::Create(5, 32, 64, 1);
  AmsSketch sketch(family);
  EXPECT_DOUBLE_EQ(sketch.EstimateSquaredNorm(), 0.0);
}

TEST(AmsSketchTest, UpdateEqualsAccumulateVector) {
  auto family = AmsHashFamily::Create(5, 32, 64, 2);
  auto v = RandomVector(64, 3);
  AmsSketch by_vector(family);
  by_vector.AccumulateVector(v.data());
  AmsSketch by_updates(family);
  for (size_t j = 0; j < v.size(); ++j) {
    by_updates.Update(j, v[j]);
  }
  for (size_t i = 0; i < by_vector.numel(); ++i) {
    EXPECT_NEAR(by_vector.data()[i], by_updates.data()[i], 1e-4);
  }
}

TEST(AmsSketchTest, LinearityUnderAddScaled) {
  // sk(a*u + b*v) == a*sk(u) + b*sk(v): the property Theorem 3.1 needs so
  // averaged sketches equal the sketch of the averaged drift.
  auto family = AmsHashFamily::Create(5, 64, 256, 4);
  auto u = RandomVector(256, 5);
  auto v = RandomVector(256, 6);
  const float a = 0.3f;
  const float b = -1.7f;
  std::vector<float> combo(256);
  for (size_t i = 0; i < 256; ++i) {
    combo[i] = a * u[i] + b * v[i];
  }
  AmsSketch direct = AmsSketch::OfVector(family, combo.data());
  AmsSketch linear(family);
  AmsSketch sk_u = AmsSketch::OfVector(family, u.data());
  AmsSketch sk_v = AmsSketch::OfVector(family, v.data());
  linear.AddScaled(sk_u, a);
  linear.AddScaled(sk_v, b);
  for (size_t i = 0; i < direct.numel(); ++i) {
    EXPECT_NEAR(direct.data()[i], linear.data()[i], 1e-3);
  }
}

TEST(AmsSketchTest, ScaleScalesEstimateQuadratically) {
  auto family = AmsHashFamily::Create(5, 64, 128, 7);
  auto v = RandomVector(128, 8);
  AmsSketch sketch = AmsSketch::OfVector(family, v.data());
  const double base = sketch.EstimateSquaredNorm();
  sketch.Scale(2.0f);
  EXPECT_NEAR(sketch.EstimateSquaredNorm(), 4.0 * base, 1e-6 * base + 1e-9);
}

TEST(AmsSketchTest, ClearZeroes) {
  auto family = AmsHashFamily::Create(3, 16, 64, 9);
  auto v = RandomVector(64, 10);
  AmsSketch sketch = AmsSketch::OfVector(family, v.data());
  sketch.Clear();
  EXPECT_DOUBLE_EQ(sketch.EstimateSquaredNorm(), 0.0);
}

TEST(AmsSketchTest, ByteSizeMatchesPaperExample) {
  // Paper §3.3: l=5, m=250 => 5 kB sketches.
  auto family = AmsHashFamily::Create(5, 250, 1000, 11);
  AmsSketch sketch(family);
  EXPECT_EQ(sketch.ByteSize(), 5u * 250u * 4u);
}

TEST(AmsSketchDeathTest, MixedFamiliesRejected) {
  auto f1 = AmsHashFamily::Create(3, 16, 64, 1);
  auto f2 = AmsHashFamily::Create(3, 16, 64, 2);
  AmsSketch a(f1);
  AmsSketch b(f2);
  EXPECT_DEATH(a.AddScaled(b, 1.0f), "shared hash family");
}

/// Accuracy: with paper-recommended dims (5 x 250) the estimate should be
/// within ~2*eps of the true squared norm for the vast majority of vectors.
class SketchAccuracyTest
    : public ::testing::TestWithParam<std::tuple<size_t, int>> {};

TEST_P(SketchAccuracyTest, EstimateWithinTolerance) {
  const auto [dim, cols] = GetParam();
  const int trials = 30;
  int failures = 0;
  for (int t = 0; t < trials; ++t) {
    auto family = AmsHashFamily::Create(
        5, cols, dim, 1000 + static_cast<uint64_t>(t));
    auto v = RandomVector(dim, 2000 + static_cast<uint64_t>(t));
    AmsSketch sketch = AmsSketch::OfVector(family, v.data());
    const double truth = vec::SquaredNorm(v.data(), dim);
    const double estimate = sketch.EstimateSquaredNorm();
    const double eps = sketch.ErrorBound();
    if (std::fabs(estimate - truth) > 2.0 * eps * truth) {
      ++failures;
    }
  }
  // 95% confidence per trial => ~1.5 expected failures at 30 trials; allow 5.
  EXPECT_LE(failures, 5);
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndWidths, SketchAccuracyTest,
    ::testing::Combine(::testing::Values<size_t>(128, 1024, 8192),
                       ::testing::Values(64, 250)));

TEST(SketchAccuracyTest, ErrorBoundMatchesPaperSetting) {
  // l=5, m=250 should give eps ~= 6% (paper §3.3).
  auto family = AmsHashFamily::Create(5, 250, 100, 1);
  AmsSketch sketch(family);
  EXPECT_NEAR(sketch.ErrorBound(), 0.06, 0.15 * 0.06 + 0.13);
  EXPECT_LT(sketch.ErrorBound(), 0.20);
}

TEST(SketchAccuracyTest, WiderSketchIsMoreAccurate) {
  // Mean relative error must shrink as cols grow.
  const size_t dim = 2048;
  auto mean_error = [&](int cols) {
    double total = 0.0;
    const int trials = 20;
    for (int t = 0; t < trials; ++t) {
      auto family = AmsHashFamily::Create(
          5, cols, dim, 5000 + static_cast<uint64_t>(t));
      auto v = RandomVector(dim, 6000 + static_cast<uint64_t>(t));
      AmsSketch sketch = AmsSketch::OfVector(family, v.data());
      const double truth = vec::SquaredNorm(v.data(), dim);
      total += std::fabs(sketch.EstimateSquaredNorm() - truth) / truth;
    }
    return total / trials;
  };
  EXPECT_LT(mean_error(256), mean_error(16));
}

TEST(AmsSketchTest, AveragedWorkerSketchesEqualSketchOfAverage) {
  // The exact setting of FDA: K workers sketch their drifts; the AllReduce
  // average of the sketches equals sk(mean drift).
  const size_t dim = 512;
  const int num_workers = 7;
  auto family = AmsHashFamily::Create(5, 100, dim, 12345);
  std::vector<std::vector<float>> drifts;
  std::vector<float> mean_drift(dim, 0.0f);
  for (int k = 0; k < num_workers; ++k) {
    drifts.push_back(RandomVector(dim, 100 + static_cast<uint64_t>(k)));
    vec::Axpy(1.0f / num_workers, drifts.back().data(), mean_drift.data(),
              dim);
  }
  AmsSketch averaged(family);
  for (const auto& drift : drifts) {
    AmsSketch sk = AmsSketch::OfVector(family, drift.data());
    averaged.AddScaled(sk, 1.0f / num_workers);
  }
  AmsSketch direct = AmsSketch::OfVector(family, mean_drift.data());
  for (size_t i = 0; i < direct.numel(); ++i) {
    EXPECT_NEAR(averaged.data()[i], direct.data()[i], 1e-3);
  }
}

}  // namespace
}  // namespace fedra
