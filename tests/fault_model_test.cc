// Fault-injection tests: FaultConfig validation, bit-deterministic Markov
// churn/link schedules, loss/retry sampling, deadline cutoffs — and the
// trainer-level contracts: survivor-only averaging parity, retry/backoff
// accounting against the analytic formula, rejoin catch-up billing,
// zero-survivor rounds, worker-parallelism independence, and hierarchical
// FDA with a whole subtree down.

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/baselines.h"
#include "core/fda_policy.h"
#include "core/trainer.h"
#include "data/synth.h"
#include "nn/zoo.h"
#include "sim/collectives.h"
#include "sim/fault_model.h"
#include "sim/topology_tree.h"
#include "tensor/vec_ops.h"

namespace fedra {
namespace {

// ------------------------------------------------------------ validation --

TEST(FaultConfigTest, ValidatesRanges) {
  EXPECT_TRUE(FaultConfig::None().Validate().ok());
  EXPECT_TRUE(FaultConfig::Churn(10.0, 2.0).Validate().ok());

  FaultConfig bad;
  bad.worker_mttf_rounds = 0.5;  // crash probability would exceed 1
  EXPECT_FALSE(bad.Validate().ok());

  bad = FaultConfig::Churn(10.0, 0.5);  // repair probability would exceed 1
  EXPECT_FALSE(bad.Validate().ok());

  bad = FaultConfig();
  bad.link_mttf_rounds = 4.0;  // outages on, but mttr unset (0 < 1)
  EXPECT_FALSE(bad.Validate().ok());

  bad = FaultConfig();
  bad.message_loss_prob = 1.5;
  EXPECT_FALSE(bad.Validate().ok());
  bad.message_loss_prob = -0.1;
  EXPECT_FALSE(bad.Validate().ok());

  bad = FaultConfig();
  bad.max_retries = -1;
  EXPECT_FALSE(bad.Validate().ok());

  bad = FaultConfig();
  bad.retry_backoff_seconds = -0.001;
  EXPECT_FALSE(bad.Validate().ok());

  bad = FaultConfig();
  bad.round_deadline_seconds = -1.0;
  EXPECT_FALSE(bad.Validate().ok());
}

// Satellite contract: a bad fault config surfaces as a Status from
// TrainerConfig::Validate (callers can report it) instead of a CHECK crash.
TEST(FaultConfigTest, TrainerValidateSurfacesFaultErrors) {
  TrainerConfig config;
  config.faults.worker_mttf_rounds = 0.25;
  const Status status = config.Validate();
  EXPECT_FALSE(status.ok());

  config = TrainerConfig();
  config.faults.message_loss_prob = 0.1;
  config.sync_compression = CompressionConfig::TopK(0.01);
  // Faults compose with compressed sync since the WireCodec pipeline:
  // survivors' deltas ride payload-carrying subset collectives.
  EXPECT_TRUE(config.Validate().ok());

  config = TrainerConfig();
  config.faults = FaultConfig::Churn(10.0, 2.0);
  EXPECT_TRUE(config.Validate().ok());
}

// ---------------------------------------------------------- determinism --

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  const FaultConfig config = [] {
    FaultConfig c = FaultConfig::Churn(4.0, 2.0);
    c.link_mttf_rounds = 6.0;
    c.link_mttr_rounds = 2.0;
    return c;
  }();
  FaultInjector a(config, 8, /*seed=*/77);
  FaultInjector b(config, 8, /*seed=*/77);
  for (int round = 0; round < 200; ++round) {
    a.BeginRound();
    b.BeginRound();
    EXPECT_EQ(a.worker_up(), b.worker_up());
    EXPECT_EQ(a.rejoined(), b.rejoined());
    EXPECT_EQ(a.NumUp(), b.NumUp());
    for (int k = 0; k < 8; ++k) {
      EXPECT_EQ(a.LinkUp(k), b.LinkUp(k));
    }
  }
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  const FaultConfig config = FaultConfig::Churn(4.0, 2.0);
  FaultInjector a(config, 8, /*seed=*/77);
  FaultInjector b(config, 8, /*seed=*/78);
  bool diverged = false;
  for (int round = 0; round < 200 && !diverged; ++round) {
    a.BeginRound();
    b.BeginRound();
    diverged = a.worker_up() != b.worker_up();
  }
  EXPECT_TRUE(diverged);
}

// ------------------------------------------------------ chain statistics --

TEST(FaultInjectorTest, AvailabilityMatchesMttfOverMttfPlusMttr) {
  // Stationary availability of the up/down chain is mttf / (mttf + mttr).
  const FaultConfig config = FaultConfig::Churn(8.0, 2.0);
  FaultInjector injector(config, 64, /*seed=*/5);
  int64_t up = 0;
  int64_t total = 0;
  const int rounds = 3000;
  for (int round = 0; round < rounds; ++round) {
    injector.BeginRound();
    up += injector.NumUp();
    total += 64;
  }
  const double availability = static_cast<double>(up) /
                              static_cast<double>(total);
  EXPECT_NEAR(availability, 8.0 / 10.0, 0.02);
}

TEST(FaultInjectorTest, RejoinedListsDownToUpTransitions) {
  const FaultConfig config = FaultConfig::Churn(3.0, 2.0);
  FaultInjector injector(config, 16, /*seed=*/9);
  std::vector<char> previous = injector.worker_up();
  int total_rejoins = 0;
  for (int round = 0; round < 500; ++round) {
    injector.BeginRound();
    std::vector<int> expected;
    for (int k = 0; k < 16; ++k) {
      if (previous[static_cast<size_t>(k)] == 0 && injector.IsUp(k)) {
        expected.push_back(k);
      }
    }
    EXPECT_EQ(injector.rejoined(), expected);
    total_rejoins += static_cast<int>(expected.size());
    previous = injector.worker_up();
  }
  EXPECT_GT(total_rejoins, 0);
}

TEST(FaultInjectorTest, TreeGroupsShareOneLinkEntity) {
  const TopologyTree tree = TopologyTree::DeviceSiteCloud(2, 2);
  ASSERT_EQ(tree.num_leaf_groups(), 4);
  FaultConfig config;
  config.link_mttf_rounds = 3.0;
  config.link_mttr_rounds = 2.0;
  FaultInjector injector(config, 8, /*seed=*/3, &tree);
  int outages = 0;
  for (int round = 0; round < 300; ++round) {
    injector.BeginRound();
    for (int g = 0; g < 4; ++g) {
      // Two workers per leaf group: one shared link state.
      EXPECT_EQ(injector.LinkUp(2 * g), injector.LinkUp(2 * g + 1));
      outages += injector.LinkUp(2 * g) ? 0 : 1;
    }
    // Churn is off: every worker computes every round.
    EXPECT_EQ(injector.NumUp(), 8);
  }
  EXPECT_GT(outages, 0);
}

// ------------------------------------------------------ delivery / loss --

TEST(FaultInjectorTest, DeliveryExtremes) {
  FaultConfig config;
  FaultInjector never_lossy(config, 2, /*seed=*/1);
  for (int i = 0; i < 64; ++i) {
    const FaultInjector::Delivery outcome = never_lossy.SampleDelivery();
    EXPECT_TRUE(outcome.delivered);
    EXPECT_EQ(outcome.retries, 0);
  }

  config.message_loss_prob = 1.0;
  config.max_retries = 3;
  FaultInjector always_lossy(config, 2, /*seed=*/1);
  for (int i = 0; i < 64; ++i) {
    const FaultInjector::Delivery outcome = always_lossy.SampleDelivery();
    EXPECT_FALSE(outcome.delivered);
    EXPECT_EQ(outcome.retries, 3);
  }

  config.max_retries = 0;  // no retransmissions at all
  FaultInjector no_retries(config, 2, /*seed=*/1);
  const FaultInjector::Delivery outcome = no_retries.SampleDelivery();
  EXPECT_FALSE(outcome.delivered);
  EXPECT_EQ(outcome.retries, 0);
}

TEST(FaultInjectorTest, DeliveryStatisticsMatchGeometricTruncation) {
  FaultConfig config;
  config.message_loss_prob = 0.5;
  config.max_retries = 2;
  FaultInjector injector(config, 2, /*seed=*/11);
  const int draws = 40000;
  int delivered = 0;
  for (int i = 0; i < draws; ++i) {
    delivered += injector.SampleDelivery().delivered ? 1 : 0;
  }
  // P(delivered) = 1 - p^(max_retries + 1) = 1 - 0.125.
  EXPECT_NEAR(static_cast<double>(delivered) / draws, 0.875, 0.01);
}

// ------------------------------------------------------------- deadline --

TEST(FaultInjectorTest, DeadlineCutsSlowWorkersAndWaitsOut) {
  FaultConfig config;
  config.round_deadline_seconds = 0.3;
  FaultInjector injector(config, 3, /*seed=*/1);
  std::vector<double> step_seconds = {0.1, 0.5, 0.2};
  std::vector<char> mask = {1, 1, 1};
  // Worker 1 misses the deadline: cut, and the round closes at the full
  // deadline (the coordinator waited it out).
  EXPECT_DOUBLE_EQ(injector.ApplyDeadline(step_seconds, &mask), 0.3);
  EXPECT_EQ(mask, (std::vector<char>{1, 0, 1}));

  // Nobody cut: the barrier is the slowest participant.
  step_seconds = {0.1, 0.25, 0.2};
  mask = {1, 1, 1};
  EXPECT_DOUBLE_EQ(injector.ApplyDeadline(step_seconds, &mask), 0.25);
  EXPECT_EQ(mask, (std::vector<char>{1, 1, 1}));

  // Entries already masked out are ignored entirely.
  step_seconds = {0.1, 9.9, 0.2};
  mask = {1, 0, 1};
  EXPECT_DOUBLE_EQ(injector.ApplyDeadline(step_seconds, &mask), 0.2);

  // No deadline configured: plain max over the masked entries.
  FaultConfig no_deadline;
  no_deadline.worker_mttf_rounds = 10.0;
  no_deadline.worker_mttr_rounds = 2.0;
  FaultInjector plain(no_deadline, 3, /*seed=*/1);
  step_seconds = {0.1, 0.5, 0.2};
  mask = {1, 1, 1};
  EXPECT_DOUBLE_EQ(plain.ApplyDeadline(step_seconds, &mask), 0.5);
}

// ----------------------------------------------- survivor-only averaging --

TEST(FaultCollectivesTest, SubsetAverageMatchesSmallerFleet) {
  const size_t n = 97;
  const std::vector<int> participants = {0, 2, 3, 6};
  // The subset collective over {0,2,3,6} of a 7-worker fleet must be
  // bit-identical (values, bytes, seconds, counters) to a 4-worker fleet
  // running the plain collective over the same buffers.
  std::vector<std::vector<float>> big(7, std::vector<float>(n));
  Rng rng(21);
  for (auto& buffer : big) {
    for (auto& x : buffer) {
      x = rng.NextUniform(-3.0f, 3.0f);
    }
  }
  std::vector<std::vector<float>> small;
  for (int k : participants) {
    small.push_back(big[static_cast<size_t>(k)]);
  }

  SimNetwork subset_net(7, NetworkModel::Hpc(), AllReduceAlgorithm::kFlat);
  std::vector<float*> subset_ptrs;
  for (int k : participants) {
    subset_ptrs.push_back(big[static_cast<size_t>(k)].data());
  }
  subset_net.AllReduceAverageSubset(subset_ptrs, participants, n,
                                    TrafficClass::kModelSync);

  SimNetwork small_net(4, NetworkModel::Hpc(), AllReduceAlgorithm::kFlat);
  std::vector<float*> small_ptrs;
  for (auto& buffer : small) {
    small_ptrs.push_back(buffer.data());
  }
  small_net.AllReduceAverage(small_ptrs, n, TrafficClass::kModelSync);

  for (size_t i = 0; i < participants.size(); ++i) {
    for (size_t j = 0; j < n; ++j) {
      EXPECT_EQ(big[static_cast<size_t>(participants[i])][j], small[i][j]);
    }
  }
  // Non-participants untouched is implied by construction; billing parity:
  EXPECT_EQ(subset_net.stats().bytes_total, small_net.stats().bytes_total);
  EXPECT_DOUBLE_EQ(subset_net.stats().comm_seconds,
                   small_net.stats().comm_seconds);
  EXPECT_EQ(subset_net.stats().allreduce_calls,
            small_net.stats().allreduce_calls);
  EXPECT_EQ(subset_net.stats().model_sync_count,
            small_net.stats().model_sync_count);
}

TEST(FaultCollectivesTest, WeightedSubsetMatchesSerialOracle) {
  const size_t n = 33;
  const std::vector<int> participants = {1, 2, 4};
  const std::vector<double> weights = {1.0, 2.0, 4.0};
  std::vector<std::vector<float>> buffers(5, std::vector<float>(n));
  Rng rng(8);
  for (auto& buffer : buffers) {
    for (auto& x : buffer) {
      x = rng.NextUniform(-2.0f, 2.0f);
    }
  }
  std::vector<double> oracle(n, 0.0);
  for (size_t i = 0; i < participants.size(); ++i) {
    for (size_t j = 0; j < n; ++j) {
      oracle[j] +=
          weights[i] *
          buffers[static_cast<size_t>(participants[i])][j];
    }
  }
  for (auto& x : oracle) {
    x /= 7.0;  // total weight
  }

  SimNetwork network(5, NetworkModel::Hpc(), AllReduceAlgorithm::kFlat);
  std::vector<float*> ptrs;
  for (int k : participants) {
    ptrs.push_back(buffers[static_cast<size_t>(k)].data());
  }
  network.AllReduceWeightedAverageSubset(ptrs, participants, weights, n,
                                         TrafficClass::kModelSync);
  for (size_t j = 0; j < n; ++j) {
    for (int k : participants) {
      EXPECT_NEAR(buffers[static_cast<size_t>(k)][j], oracle[j], 1e-6);
    }
  }
  // Worker 0 and 3 never participated.
  EXPECT_EQ(buffers[0][0], buffers[0][0]);
}

TEST(FaultCollectivesTest, SubtreeSubsetSingleSurvivorIsFree) {
  TopologyTree tree =
      TopologyTree::FromHierarchy(HierarchicalNetworkModel::EdgeCloud(2));
  SimNetwork network(4, std::move(tree), AllReduceAlgorithm::kFlat);
  const size_t n = 16;
  std::vector<float> buffer(n, 2.0f);
  std::vector<char> active = {1, 0, 1, 1};  // worker 1 absent
  const int group0_node = network.tree().NodeOfLeafGroup(0);
  network.SubtreeAllReduceAverageSubset(group0_node, {buffer.data()},
                                        active, n,
                                        TrafficClass::kModelSync);
  // A single surviving member is its own average: no wire traffic at all.
  EXPECT_EQ(network.stats().bytes_total, 0u);
  EXPECT_DOUBLE_EQ(network.stats().comm_seconds, 0.0);
  EXPECT_EQ(network.stats().subtree_allreduce_calls, 1u);
  for (float x : buffer) {
    EXPECT_EQ(x, 2.0f);
  }
}

// ------------------------------------------------------- trainer churn --

SynthImageData SmallMnistLike() {
  SynthImageConfig config = MnistLikeConfig();
  config.num_train = 512;
  config.num_test = 256;
  config.image_size = 16;
  auto data = GenerateSynthImages(config);
  FEDRA_CHECK(data.ok());
  return std::move(data).value();
}

ModelFactory SmallMlpFactory() {
  return [] { return zoo::Mlp(16 * 16, {24}, 10); };
}

TrainerConfig BaseConfig(int num_workers) {
  TrainerConfig config;
  config.num_workers = num_workers;
  config.batch_size = 16;
  config.local_optimizer = OptimizerConfig::Adam(0.002f);
  config.seed = 11;
  config.max_steps = 60;
  config.eval_every_steps = 30;
  config.eval_subset = 128;
  return config;
}

TEST(FaultTrainerTest, ChurnBillsOneCatchUpSyncPerRejoin) {
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = BaseConfig(4);
  config.faults = FaultConfig::Churn(4.0, 2.0);
  DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                             config);
  LocalSgdPolicy policy(TauSchedule::Fixed(5));
  auto result = trainer.Run(&policy);
  ASSERT_TRUE(result.ok()) << result.status();

  // 60 rounds at mttf 4: rejoins certainly happened, and each one paid
  // exactly one catch-up model download.
  EXPECT_GT(result->rejoin_count, 0u);
  EXPECT_EQ(result->comm.catch_up_syncs, result->rejoin_count);
  // No message loss configured: nothing retried or dropped.
  EXPECT_EQ(result->comm.retries, 0u);
  EXPECT_EQ(result->comm.dropped_messages, 0u);
  EXPECT_DOUBLE_EQ(result->comm.seconds_retry, 0.0);
  // Class split still covers the total.
  EXPECT_NEAR(result->comm.seconds_model_sync +
                  result->comm.seconds_local_state,
              result->comm.comm_seconds,
              1e-12 * std::max(1.0, result->comm.comm_seconds));

  // Bit-determinism: the same config replays the same faults and history.
  DistributedTrainer again(SmallMlpFactory(), data.train, data.test,
                           config);
  LocalSgdPolicy policy2(TauSchedule::Fixed(5));
  auto replay = again.Run(&policy2);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->rejoin_count, result->rejoin_count);
  EXPECT_EQ(replay->comm.bytes_total, result->comm.bytes_total);
  EXPECT_EQ(replay->final_test_accuracy, result->final_test_accuracy);
}

TEST(FaultTrainerTest, TotalLossRetryAccountingMatchesAnalyticFormula) {
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = BaseConfig(2);
  config.max_steps = 10;
  config.eval_every_steps = 5;
  config.faults.message_loss_prob = 1.0;  // every contribution dropped
  config.faults.max_retries = 2;
  config.faults.retry_backoff_seconds = 0.005;
  DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                             config);
  const size_t dim = trainer.model_dim();
  SynchronousPolicy policy;
  auto result = trainer.Run(&policy);
  ASSERT_TRUE(result.ok()) << result.status();

  // Every round: both contributions retried twice then dropped; the sync
  // itself never happens.
  EXPECT_EQ(result->total_syncs, 0u);
  EXPECT_EQ(result->skipped_syncs, 10u);
  EXPECT_EQ(result->comm.retries, 10u * 2u * 2u);
  EXPECT_EQ(result->comm.dropped_messages, 10u * 2u);
  EXPECT_EQ(result->comm.model_sync_count, 0u);

  // The only traffic is the retransmissions: 2 payloads per worker-round.
  const double payload = static_cast<double>(dim * sizeof(float));
  EXPECT_EQ(result->comm.bytes_total,
            static_cast<uint64_t>(10u * 2u * 2u * dim * sizeof(float)));

  // Analytic retry time: retry i waits backoff * 2^i, then retransmits
  // over the flat link (latency + payload / bandwidth).
  const NetworkModel link = NetworkModel::Hpc();
  const double per_send = link.latency_seconds +
                          payload / link.bandwidth_bytes_per_sec;
  const double per_worker_round = (0.005 + per_send) + (0.010 + per_send);
  const double expected = 10.0 * 2.0 * per_worker_round;
  EXPECT_NEAR(result->comm.seconds_retry, expected, 1e-9 * expected);
  // Retries were the only traffic, so they ARE the comm time.
  EXPECT_DOUBLE_EQ(result->comm.comm_seconds, result->comm.seconds_retry);
}

TEST(FaultTrainerTest, ImpossibleDeadlineSkipsEveryRound) {
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = BaseConfig(3);
  config.max_steps = 15;
  config.eval_every_steps = 5;
  // Every step takes base_step_seconds = 0.01 > deadline: all cut, every
  // round closes with zero participants at exactly the deadline.
  config.straggler = StragglerModel::None(0.01);
  config.faults.round_deadline_seconds = 0.005;
  DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                             config);
  SynchronousPolicy policy;
  auto result = trainer.Run(&policy);
  ASSERT_TRUE(result.ok()) << result.status();

  EXPECT_EQ(result->zero_participant_rounds, 15u);
  EXPECT_EQ(result->total_syncs, 0u);
  EXPECT_EQ(result->comm.bytes_total, 0u);
  EXPECT_NEAR(result->compute_seconds, 15.0 * 0.005, 1e-12);
  // Local training still happened and state carried forward: the run
  // produced a real (if unsynchronized) model.
  EXPECT_GT(result->final_test_accuracy, 0.0);
}

TEST(FaultTrainerTest, FaultScheduleIndependentOfWorkerParallelism) {
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = BaseConfig(4);
  config.faults = FaultConfig::Churn(5.0, 2.0);
  config.faults.message_loss_prob = 0.05;

  DistributedTrainer serial(SmallMlpFactory(), data.train, data.test,
                            config);
  LocalSgdPolicy policy_a(TauSchedule::Fixed(4));
  auto serial_result = serial.Run(&policy_a);
  ASSERT_TRUE(serial_result.ok());

  config.parallel_workers = true;
  DistributedTrainer parallel(SmallMlpFactory(), data.train, data.test,
                              config);
  LocalSgdPolicy policy_b(TauSchedule::Fixed(4));
  auto parallel_result = parallel.Run(&policy_b);
  ASSERT_TRUE(parallel_result.ok());

  // The fault schedule and every downstream number are a pure function of
  // (config, seed) — never of the worker execution order.
  EXPECT_EQ(serial_result->rejoin_count, parallel_result->rejoin_count);
  EXPECT_EQ(serial_result->comm.retries, parallel_result->comm.retries);
  EXPECT_EQ(serial_result->comm.dropped_messages,
            parallel_result->comm.dropped_messages);
  EXPECT_EQ(serial_result->comm.bytes_total,
            parallel_result->comm.bytes_total);
  EXPECT_EQ(serial_result->total_syncs, parallel_result->total_syncs);
  EXPECT_EQ(serial_result->final_test_accuracy,
            parallel_result->final_test_accuracy);
  ASSERT_EQ(serial_result->history.size(),
            parallel_result->history.size());
  for (size_t i = 0; i < serial_result->history.size(); ++i) {
    EXPECT_EQ(serial_result->history[i].test_accuracy,
              parallel_result->history[i].test_accuracy);
    EXPECT_EQ(serial_result->history[i].sim_seconds,
              parallel_result->history[i].sim_seconds);
    EXPECT_EQ(serial_result->history[i].bytes,
              parallel_result->history[i].bytes);
  }
}

// ------------------------------------------- hierarchical subtree down --

// Hand-built cluster harness: 4 workers on a 2-cluster tree, no trainer
// loop — MaybeSync is driven directly with a participation mask.
struct HierarchicalHarness {
  static constexpr size_t kDim = 8;

  HierarchicalHarness()
      : arena(4, kDim, 0),
        network(4,
                TopologyTree::FromHierarchy(
                    HierarchicalNetworkModel::EdgeCloud(2)),
                AllReduceAlgorithm::kFlat),
        sync_params(kDim, 0.0f),
        prev_sync_params(kDim, 0.0f) {
    workers.resize(4);
    for (int k = 0; k < 4; ++k) {
      WorkerState& worker = workers[static_cast<size_t>(k)];
      worker.view = arena.view(k);
      worker.drift = arena.drift(k);
      // Distinct params per worker so subtree variance estimates are
      // strictly positive.
      for (size_t i = 0; i < kDim; ++i) {
        worker.view.params[i] =
            static_cast<float>(k + 1) + 0.1f * static_cast<float>(i);
      }
    }
    ctx.workers = &workers;
    ctx.arena = &arena;
    ctx.network = &network;
    ctx.dim = kDim;
    ctx.sync_params = &sync_params;
    ctx.prev_sync_params = &prev_sync_params;
  }

  std::unique_ptr<HierarchicalFdaPolicy> MakePolicy(
      std::vector<double> theta_by_depth) {
    HierarchicalFdaConfig config;
    config.monitor.kind = MonitorKind::kLinear;
    config.theta_by_depth = std::move(theta_by_depth);
    auto policy = MakeHierarchicalFdaPolicy(config, kDim);
    FEDRA_CHECK(policy.ok()) << policy.status();
    policy.value()->Initialize(ctx);
    return std::move(policy).value();
  }

  WorkerArena arena;
  SimNetwork network;
  std::vector<float> sync_params;
  std::vector<float> prev_sync_params;
  std::vector<WorkerState> workers;
  ClusterContext ctx;
};

TEST(FaultHierarchicalTest, WholeSubtreeDownLocalSyncOnSurvivors) {
  HierarchicalHarness harness;
  // Leaf threshold 0 (always trips), root threshold astronomical.
  auto policy = harness.MakePolicy({1e18, 0.0});
  // Cluster 0 (workers 0, 1) is entirely absent this round.
  std::vector<char> mask = {0, 0, 1, 1};
  harness.ctx.participation = &mask;

  std::vector<float> before0(harness.workers[0].view.params,
                             harness.workers[0].view.params + 8);
  std::vector<float> expected(8);
  for (size_t i = 0; i < 8; ++i) {
    expected[i] = (harness.workers[2].view.params[i] +
                   harness.workers[3].view.params[i]) /
                  2.0f;
  }

  EXPECT_FALSE(policy->MaybeSync(harness.ctx));

  // Cluster 1 averaged locally; the absent cluster and the global anchor
  // are untouched; the uplink carried nothing.
  EXPECT_EQ(policy->local_sync_count(), 1u);
  EXPECT_EQ(policy->global_sync_count(), 0u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(harness.workers[2].view.params[i], expected[i]);
    EXPECT_FLOAT_EQ(harness.workers[3].view.params[i], expected[i]);
    EXPECT_EQ(harness.workers[0].view.params[i], before0[i]);
    EXPECT_EQ(harness.sync_params[i], 0.0f);
  }
  // One leaf state allreduce + one local model sync, both on cluster 1's
  // own tier; the root tier is silent.
  EXPECT_EQ(harness.network.stats().subtree_allreduce_calls, 2u);
  EXPECT_EQ(harness.network.stats().BytesAtDepth(0), 0u);
  EXPECT_DOUBLE_EQ(harness.network.stats().SecondsAtDepth(0), 0.0);
}

TEST(FaultHierarchicalTest, WholeSubtreeDownGlobalSyncAveragesSurvivors) {
  HierarchicalHarness harness;
  // Root threshold 0: everything escalates; leaf threshold astronomical.
  auto policy = harness.MakePolicy({0.0, 1e18});
  std::vector<char> mask = {0, 0, 1, 1};
  harness.ctx.participation = &mask;

  std::vector<float> before0(harness.workers[0].view.params,
                             harness.workers[0].view.params + 8);
  std::vector<float> expected(8);
  for (size_t i = 0; i < 8; ++i) {
    expected[i] = (harness.workers[2].view.params[i] +
                   harness.workers[3].view.params[i]) /
                  2.0f;
  }

  EXPECT_TRUE(policy->MaybeSync(harness.ctx));

  // Global sync over the survivors only: the anchor moves to their mean,
  // the absent cluster keeps its stale params for a later catch-up.
  EXPECT_EQ(policy->global_sync_count(), 1u);
  EXPECT_EQ(policy->local_sync_count(), 0u);
  // The root aggregated from a single active child: no billable
  // child-representative exchange happened.
  EXPECT_EQ(policy->escalation_count(), 0u);
  EXPECT_EQ(harness.network.stats().child_exchange_calls, 0u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(harness.sync_params[i], expected[i]);
    EXPECT_FLOAT_EQ(harness.workers[2].view.params[i], expected[i]);
    EXPECT_EQ(harness.workers[0].view.params[i], before0[i]);
  }
  EXPECT_EQ(harness.ctx.sync_count, 1u);
}

// Null mask must keep the hierarchical scheduler's arithmetic identical
// to the masked all-ones case (the bit-identity contract).
TEST(FaultHierarchicalTest, AllOnesMaskMatchesNullMask) {
  HierarchicalHarness masked;
  HierarchicalHarness plain;
  auto masked_policy = masked.MakePolicy({1e18, 0.0});
  auto plain_policy = plain.MakePolicy({1e18, 0.0});
  std::vector<char> mask = {1, 1, 1, 1};
  masked.ctx.participation = &mask;

  EXPECT_EQ(masked_policy->MaybeSync(masked.ctx),
            plain_policy->MaybeSync(plain.ctx));
  for (int k = 0; k < 4; ++k) {
    for (size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(masked.workers[static_cast<size_t>(k)].view.params[i],
                plain.workers[static_cast<size_t>(k)].view.params[i]);
    }
  }
  EXPECT_EQ(masked.network.stats().bytes_total,
            plain.network.stats().bytes_total);
  EXPECT_DOUBLE_EQ(masked.network.stats().comm_seconds,
                   plain.network.stats().comm_seconds);
}

}  // namespace
}  // namespace fedra
