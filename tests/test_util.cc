#include "tests/test_util.h"

#include <algorithm>

#include "nn/loss.h"
#include "util/check.h"

namespace fedra {
namespace testing {

namespace {

/// loss = sum_i weight_i * output_i with fixed random weights.
double WeightedLoss(const Tensor& output, const std::vector<float>& weights) {
  FEDRA_CHECK_EQ(output.numel(), weights.size());
  double loss = 0.0;
  for (size_t i = 0; i < output.numel(); ++i) {
    loss += static_cast<double>(output[i]) * weights[i];
  }
  return loss;
}

void UpdateErrors(double analytic, double numeric, GradCheckResult* result) {
  const double abs_error = std::fabs(analytic - numeric);
  // The scale floor absorbs central-difference noise on near-zero
  // gradients: float32 forward passes of deep nets perturb the loss by
  // ~1e-5, which divided by 2*eps would otherwise dominate the relative
  // error whenever the true gradient is ~0.
  const double scale =
      std::max({std::fabs(analytic), std::fabs(numeric), 2e-2});
  result->max_abs_error = std::max(result->max_abs_error, abs_error);
  result->max_rel_error = std::max(result->max_rel_error, abs_error / scale);
}

}  // namespace

GradCheckResult CheckInputGradient(LayerHarness* harness, const Tensor& input,
                                   uint64_t seed, double epsilon) {
  Rng rng(seed);
  harness->ctx().training = false;  // deterministic path (no dropout masks)

  Tensor base_output = harness->Forward(input);
  std::vector<float> weights(base_output.numel());
  FillUniform(weights.data(), weights.size(), &rng, -1.0f, 1.0f);

  // Analytic gradient: backprop the loss weights.
  Tensor grad_output(base_output.shape());
  for (size_t i = 0; i < weights.size(); ++i) {
    grad_output[i] = weights[i];
  }
  // Re-run forward so the layer's caches match this input.
  harness->Forward(input);
  Tensor analytic = harness->Backward(grad_output);

  GradCheckResult result;
  Tensor perturbed = input;
  for (size_t i = 0; i < input.numel(); ++i) {
    const float saved = perturbed[i];
    perturbed[i] = saved + static_cast<float>(epsilon);
    const double loss_hi = WeightedLoss(harness->Forward(perturbed), weights);
    perturbed[i] = saved - static_cast<float>(epsilon);
    const double loss_lo = WeightedLoss(harness->Forward(perturbed), weights);
    perturbed[i] = saved;
    const double numeric = (loss_hi - loss_lo) / (2.0 * epsilon);
    UpdateErrors(static_cast<double>(analytic[i]), numeric, &result);
  }
  return result;
}

GradCheckResult CheckParamGradient(Model* model, const Tensor& input,
                                   const std::vector<int>& labels,
                                   size_t num_probes, uint64_t seed,
                                   double epsilon) {
  Rng rng(seed);
  model->ZeroGrads();
  Tensor logits = model->Forward(input, /*training=*/false);
  LossResult loss = SoftmaxCrossEntropy(logits, labels);
  model->Backward(loss.grad_logits);

  GradCheckResult result;
  const size_t dim = model->num_params();
  for (size_t probe = 0; probe < num_probes; ++probe) {
    const size_t i = static_cast<size_t>(rng.NextBounded(dim));
    const float saved = model->params()[i];
    model->params()[i] = saved + static_cast<float>(epsilon);
    const double loss_hi =
        SoftmaxCrossEntropy(model->Forward(input, false), labels).loss;
    model->params()[i] = saved - static_cast<float>(epsilon);
    const double loss_lo =
        SoftmaxCrossEntropy(model->Forward(input, false), labels).loss;
    model->params()[i] = saved;
    const double numeric = (loss_hi - loss_lo) / (2.0 * epsilon);
    UpdateErrors(static_cast<double>(model->grads()[i]), numeric, &result);
  }
  return result;
}

}  // namespace testing
}  // namespace fedra
