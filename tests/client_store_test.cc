// ClientStateStore + CohortSampler tests: slab paging layout and free-list
// recycling, lazy drift materialization, first-touch rng stream derivation,
// the population-scale variance correction (including the bitwise bypass at
// population == cohort), leaf-group client pools under a topology tree,
// sampler determinism (same (seed, round) -> same cohort, independent of
// FEDRA_NUM_THREADS via a child-process sweep), TrainerConfig fleet
// validation, and an end-to-end fleet trainer smoke run.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "core/client_store.h"
#include "core/fda_policy.h"
#include "core/trainer.h"
#include "core/variance_monitor.h"
#include "data/synth.h"
#include "nn/zoo.h"
#include "sim/fault_model.h"
#include "sim/topology_tree.h"

namespace fedra {
namespace {

ClientStoreConfig SmallStoreConfig() {
  ClientStoreConfig config;
  config.population = 10;
  config.cohort_slots = 2;
  config.dim = 4;
  config.opt_state_slots = 1;
  config.seed = 3;
  config.pages_per_slab = 2;
  return config;
}

// ------------------------------------------------------------- validation --

TEST(ClientStoreConfigTest, ValidateRejectsBadShapes) {
  ClientStoreConfig config = SmallStoreConfig();
  EXPECT_TRUE(config.Validate().ok());
  config.population = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = SmallStoreConfig();
  config.cohort_slots = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = SmallStoreConfig();
  config.population = 1;  // < cohort_slots
  EXPECT_FALSE(config.Validate().ok());
  config = SmallStoreConfig();
  config.dim = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = SmallStoreConfig();
  config.pages_per_slab = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(ClientStoreTrainerConfigTest, ValidateRejectsFleetMisconfigurations) {
  TrainerConfig config;
  config.num_workers = 4;
  // cohort_size without a population is not a fleet.
  config.cohort_size = 4;
  EXPECT_FALSE(config.Validate().ok());
  // Cohort larger than the population cannot be sampled.
  config.population = 3;
  config.cohort_size = 4;
  Status status = config.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("must not exceed population"),
            std::string::npos);
  // A cohort beyond the tree's resident slots exceeds leaf capacity: a
  // Status, not a crash.
  config.population = 100;
  config.cohort_size = 8;
  status = config.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("leaf capacity"), std::string::npos);
  // Under-filling the arena rows is rejected too.
  config.cohort_size = 2;
  EXPECT_FALSE(config.Validate().ok());
  // cohort_size == num_workers (or defaulted) is the valid shape.
  config.cohort_size = 4;
  EXPECT_TRUE(config.Validate().ok());
  config.cohort_size = 0;
  EXPECT_TRUE(config.Validate().ok());
  config.cohort_steps = 0;
  EXPECT_FALSE(config.Validate().ok());
  config.cohort_steps = 5;
  EXPECT_TRUE(config.Validate().ok());
}

// ------------------------------------------------- paging and recycling --

TEST(ClientStoreTest, SlabPagingLayoutAndFreeListRecycling) {
  ClientStoreConfig config = SmallStoreConfig();
  ClientStateStore store(config);
  store.SetStateSize(0);
  const size_t dim = config.dim;
  std::vector<float> anchor = {1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> params(dim), opt(dim);

  // Five one-step residencies materialize five pages across three slabs
  // (pages_per_slab == 2), handed out in ascending order.
  for (uint32_t c = 0; c < 5; ++c) {
    ClientStateStore::CheckInResult in =
        store.CheckIn(c, anchor.data(), params.data(), opt.data());
    EXPECT_TRUE(in.first_touch);
    EXPECT_FALSE(in.restored);
    for (size_t j = 0; j < dim; ++j) {
      params[j] = anchor[j] + static_cast<float>(c + 1);  // drift = c + 1
      opt[j] = 10.0f * static_cast<float>(c);
    }
    store.CheckOut(c, params.data(), anchor.data(), opt.data(), Rng(1),
                   Rng(2), /*optimizer_steps=*/c, /*steps_this_residency=*/1,
                   /*monitor=*/nullptr);
    EXPECT_TRUE(store.HasPage(c));
  }
  EXPECT_EQ(store.pages_in_use(), 5u);
  EXPECT_EQ(store.slab_count(), 3u);
  EXPECT_EQ(store.pages_allocated(), 6u);
  EXPECT_EQ(store.free_pages(), 1u);
  EXPECT_EQ(store.touched_clients(), 5u);

  // Check-in restores params = anchor + stored drift and the optimizer
  // vectors, and releases the page back to the free list.
  ClientStateStore::CheckInResult in =
      store.CheckIn(2, anchor.data(), params.data(), opt.data());
  EXPECT_FALSE(in.first_touch);
  EXPECT_TRUE(in.restored);
  EXPECT_EQ(in.optimizer_steps, 2u);
  EXPECT_EQ(in.local_steps, 1u);
  for (size_t j = 0; j < dim; ++j) {
    EXPECT_EQ(params[j], anchor[j] + 3.0f);
    EXPECT_EQ(opt[j], 20.0f);
  }
  EXPECT_FALSE(store.HasPage(2));
  EXPECT_TRUE(store.Touched(2));
  EXPECT_EQ(store.pages_in_use(), 4u);
  EXPECT_EQ(store.free_pages(), 2u);

  // The next materialization recycles a freed page: no new slab.
  store.CheckOut(2, params.data(), anchor.data(), opt.data(), Rng(1), Rng(2),
                 2, 1, nullptr);
  EXPECT_EQ(store.pages_in_use(), 5u);
  EXPECT_EQ(store.slab_count(), 3u);
  EXPECT_EQ(store.pages_allocated(), 6u);

  // The footprint scales with touched clients, not the population.
  EXPECT_LT(store.resident_bytes(), 8u * 1024u);
}

TEST(ClientStoreTest, LazyDriftMaterialization) {
  ClientStoreConfig config = SmallStoreConfig();
  ClientStateStore store(config);
  store.SetStateSize(0);
  const size_t dim = config.dim;
  std::vector<float> anchor(dim, 2.0f);
  std::vector<float> params(dim), opt(dim);

  // A residency with zero local steps stores nothing: no page, no slab.
  store.CheckIn(7, anchor.data(), params.data(), opt.data());
  store.CheckOut(7, params.data(), anchor.data(), opt.data(), Rng(1), Rng(2),
                 0, /*steps_this_residency=*/0, nullptr);
  EXPECT_TRUE(store.Touched(7));
  EXPECT_FALSE(store.HasPage(7));
  EXPECT_EQ(store.pages_in_use(), 0u);
  EXPECT_EQ(store.slab_count(), 0u);

  // Re-check-in lands exactly on the anchor.
  ClientStateStore::CheckInResult in =
      store.CheckIn(7, anchor.data(), params.data(), opt.data());
  EXPECT_FALSE(in.first_touch);
  EXPECT_FALSE(in.restored);
  for (size_t j = 0; j < dim; ++j) {
    EXPECT_EQ(params[j], anchor[j]);
    EXPECT_EQ(opt[j], 0.0f);
  }

  // Once a client has materialized, even a 0-step residency re-stores its
  // (nonzero) drift.
  params[0] = anchor[0] + 1.0f;
  store.CheckOut(7, params.data(), anchor.data(), opt.data(), Rng(1), Rng(2),
                 1, 1, nullptr);
  EXPECT_TRUE(store.HasPage(7));
  store.CheckIn(7, anchor.data(), params.data(), opt.data());
  store.CheckOut(7, params.data(), anchor.data(), opt.data(), Rng(1), Rng(2),
                 1, /*steps_this_residency=*/0, nullptr);
  EXPECT_TRUE(store.HasPage(7));
}

TEST(ClientStoreTest, FirstTouchStreamsMatchResidentCohortForks) {
  // The warm entry's rng streams must be the canonical BuildWorkerCohort
  // forks of the run seed — the population == K identity depends on it.
  ClientStoreConfig config = SmallStoreConfig();
  ClientStateStore store(config);
  store.SetStateSize(0);
  std::vector<float> anchor(config.dim, 0.0f);
  std::vector<float> params(config.dim), opt(config.dim);
  ClientStateStore::CheckInResult in =
      store.CheckIn(6, anchor.data(), params.data(), opt.data());
  const Rng master(config.seed);
  Rng sampler_expected = master.Fork(6 + 1);
  Rng worker_expected = master.Fork(6 + 1000);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(in.sampler_rng.NextUint64(), sampler_expected.NextUint64());
    EXPECT_EQ(in.worker_rng.NextUint64(), worker_expected.NextUint64());
  }
}

// --------------------------------------- population variance correction --

TEST(ClientStoreTest, PopulationEstimateBypassesAtPopulationEqualsCohort) {
  ClientStoreConfig config = SmallStoreConfig();
  config.population = 2;  // == cohort_slots
  ClientStateStore store(config);
  LinearVarianceMonitor monitor(config.dim);
  const float state[2] = {1.25f, 0.5f};
  // Bitwise bypass: identical to the raw estimate, even though the store's
  // state size was never set.
  EXPECT_EQ(store.PopulationEstimate(monitor, state, 2),
            monitor.EstimateVariance(state));
}

TEST(ClientStoreTest, PopulationEstimateBlendsOffCohortStates) {
  ClientStoreConfig config;
  config.population = 6;
  config.cohort_slots = 2;
  config.dim = 2;
  config.opt_state_slots = 0;
  config.seed = 9;
  ClientStateStore store(config);
  ExactVarianceMonitor monitor(config.dim);
  store.SetStateSize(monitor.StateSize());  // 1 + dim = 3

  const std::vector<float> anchor = {1.0f, 1.0f};
  std::vector<float> params(config.dim);

  // Client 2 parks drift (1, 0): state (1, 1, 0). Client 3 parks drift
  // (0, 2): state (4, 0, 2). Off-cohort sum = (5, 1, 2).
  store.CheckIn(2, anchor.data(), params.data(), nullptr);
  params = {anchor[0] + 1.0f, anchor[1]};
  store.CheckOut(2, params.data(), anchor.data(), nullptr, Rng(1), Rng(2), 1,
                 1, &monitor);
  store.CheckIn(3, anchor.data(), params.data(), nullptr);
  params = {anchor[0], anchor[1] + 2.0f};
  store.CheckOut(3, params.data(), anchor.data(), nullptr, Rng(1), Rng(2), 1,
                 1, &monitor);
  ASSERT_EQ(store.off_cohort_states(), 2u);

  // Cohort mean state over 2 active: (2, 1, 0). The blend the doc comment
  // promises runs over active + materialized off-cohort states (never-
  // touched clients are excluded): S_pop[j] = (active * S_mean[j] +
  // off_sum[j]) / (active + off) = ((2*2+5)/4, (2*1+1)/4, (2*0+2)/4).
  const float mean_state[3] = {2.0f, 1.0f, 0.0f};
  const double estimate = store.PopulationEstimate(monitor, mean_state, 2);
  const float blended[3] = {2.25f, 0.75f, 0.5f};
  EXPECT_DOUBLE_EQ(estimate, monitor.EstimateVariance(blended));

  // Checking a client back in removes its contribution bitwise-exactly.
  store.CheckIn(3, anchor.data(), params.data(), nullptr);
  EXPECT_EQ(store.off_cohort_states(), 1u);
  const float blended_one[3] = {(2.0f * 2.0f + 1.0f) / 3.0f,
                                (2.0f * 1.0f + 1.0f) / 3.0f, 0.0f};
  EXPECT_DOUBLE_EQ(store.PopulationEstimate(monitor, mean_state, 2),
                   monitor.EstimateVariance(blended_one));
}

TEST(ClientStoreTest, PopulationEstimateBlendsOnlyElementZeroForLinear) {
  // LinearFDA's <xi, u> tail is relative to the current xi, so stored tails
  // go stale: only element 0 blends, the tail passes through untouched.
  ClientStoreConfig config;
  config.population = 6;
  config.cohort_slots = 2;
  config.dim = 2;
  config.seed = 9;
  ClientStateStore store(config);
  LinearVarianceMonitor monitor(config.dim);
  store.SetStateSize(monitor.StateSize());  // 2

  const std::vector<float> anchor = {0.0f, 0.0f};
  std::vector<float> params(config.dim);
  store.CheckIn(4, anchor.data(), params.data(), nullptr);
  params = {3.0f, 4.0f};  // ||u||^2 = 25
  store.CheckOut(4, params.data(), anchor.data(), nullptr, Rng(1), Rng(2), 1,
                 1, &monitor);

  const float mean_state[2] = {5.0f, 0.7f};
  const float blended[2] = {(2.0f * 5.0f + 25.0f) / 3.0f, 0.7f};
  EXPECT_DOUBLE_EQ(store.PopulationEstimate(monitor, mean_state, 2),
                   monitor.EstimateVariance(blended));
}

// ----------------------------------------------------- leaf-group pools --

TEST(ClientStoreTest, LeafGroupPoolsFollowTreeLayout) {
  TopologyTree tree = TopologyTree::DeviceSiteCloud(2, 2);  // 4 leaf groups
  ClientStoreConfig config;
  config.population = 100;
  config.cohort_slots = 8;
  config.dim = 4;
  config.seed = 1;
  ClientStateStore store(config, &tree);
  ASSERT_EQ(store.num_client_groups(), 4);
  // Slot spans of 2 map to proportional client pools of 25.
  for (int g = 0; g < 4; ++g) {
    EXPECT_EQ(store.GroupSlotBegin(g), 2 * g);
    EXPECT_EQ(store.GroupSlotEnd(g), 2 * g + 2);
    EXPECT_EQ(store.GroupClientBegin(g), static_cast<uint32_t>(25 * g));
    EXPECT_EQ(store.GroupClientEnd(g), static_cast<uint32_t>(25 * g + 25));
  }
  EXPECT_EQ(store.LeafGroupOfClient(0), 0);
  EXPECT_EQ(store.LeafGroupOfClient(24), 0);
  EXPECT_EQ(store.LeafGroupOfClient(25), 1);
  EXPECT_EQ(store.LeafGroupOfClient(99), 3);
}

// ----------------------------------------------------------- the sampler --

TEST(CohortSamplerTest, DeterministicPerRoundAndRespectsGroupPools) {
  TopologyTree tree = TopologyTree::DeviceSiteCloud(2, 2);
  ClientStoreConfig config;
  config.population = 100;
  config.cohort_slots = 8;
  config.dim = 4;
  config.seed = 21;
  ClientStateStore store(config, &tree);
  CohortSampler sampler(&store, CohortScheduleKind::kUniform, config.seed);

  const std::vector<uint32_t> round0 = sampler.Sample(0, nullptr);
  EXPECT_EQ(round0, sampler.Sample(0, nullptr));  // pure function of round
  EXPECT_NE(round0, sampler.Sample(1, nullptr));
  ASSERT_EQ(round0.size(), 8u);

  std::set<uint32_t> unique(round0.begin(), round0.end());
  EXPECT_EQ(unique.size(), round0.size());  // without replacement
  for (int g = 0; g < store.num_client_groups(); ++g) {
    for (int k = store.GroupSlotBegin(g); k < store.GroupSlotEnd(g); ++k) {
      // Slot-aligned: slot k's client comes from its own group's pool...
      EXPECT_GE(round0[static_cast<size_t>(k)], store.GroupClientBegin(g));
      EXPECT_LT(round0[static_cast<size_t>(k)], store.GroupClientEnd(g));
      // ...ascending within the group span.
      if (k > store.GroupSlotBegin(g)) {
        EXPECT_LT(round0[static_cast<size_t>(k) - 1],
                  round0[static_cast<size_t>(k)]);
      }
    }
  }
}

TEST(CohortSamplerTest, IdentityCohortAtPopulationEqualsCohort) {
  ClientStoreConfig config;
  config.population = 8;
  config.cohort_slots = 8;
  config.dim = 4;
  config.seed = 21;
  ClientStateStore store(config);
  for (CohortScheduleKind kind :
       {CohortScheduleKind::kUniform, CohortScheduleKind::kAvailability}) {
    CohortSampler sampler(&store, kind, config.seed);
    for (uint64_t round : {0ull, 1ull, 17ull}) {
      const std::vector<uint32_t> cohort = sampler.Sample(round, nullptr);
      ASSERT_EQ(cohort.size(), 8u);
      for (uint32_t k = 0; k < 8; ++k) {
        EXPECT_EQ(cohort[k], k);
      }
    }
  }
}

TEST(CohortSamplerTest, AvailabilitySamplingAvoidsDownClients) {
  ClientStoreConfig config;
  config.population = 64;
  config.cohort_slots = 4;
  config.dim = 4;
  config.seed = 5;
  ClientStateStore store(config);
  CohortSampler sampler(&store, CohortScheduleKind::kAvailability,
                        config.seed);

  FaultConfig faults;
  faults.worker_mttf_rounds = 2.0;  // heavy churn: roughly half down
  faults.worker_mttr_rounds = 2.0;
  std::vector<int> links(config.population);
  for (size_t c = 0; c < config.population; ++c) {
    links[c] = static_cast<int>(c);
  }
  FaultInjector injector(faults, static_cast<int>(config.population),
                         config.seed, links,
                         static_cast<int>(config.population));
  size_t down_seen = 0;
  for (uint64_t round = 0; round < 20; ++round) {
    injector.BeginRound();
    for (size_t c = 0; c < config.population; ++c) {
      down_seen += injector.IsUp(static_cast<int>(c)) ? 0 : 1;
    }
    const std::vector<uint32_t> cohort = sampler.Sample(round, &injector);
    ASSERT_EQ(cohort.size(), 4u);
    for (uint32_t c : cohort) {
      // With 4 slots over a 64-client pool at ~50% availability, the
      // rejection budget always finds up clients (deterministic seed).
      EXPECT_TRUE(injector.IsUp(static_cast<int>(c)))
          << "round " << round << " sampled down client " << c;
    }
    // And the same round resamples identically under the same fault state.
    EXPECT_EQ(cohort, sampler.Sample(round, &injector));
  }
  EXPECT_GT(down_seen, 0u);  // the churn actually took clients down
}

// ----------------------------------------- thread-count determinism sweep --

uint64_t HashU64(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Fleet-mode end-to-end workload whose history hash must be independent of
/// FEDRA_NUM_THREADS: population 12 over 4 resident slots, rotations every
/// 3 steps, parallel workers on.
uint64_t ComputeFleetSweepHash() {
  SynthImageConfig synth = MnistLikeConfig();
  synth.num_train = 256;
  synth.num_test = 128;
  synth.image_size = 16;
  auto data = GenerateSynthImages(synth);
  FEDRA_CHECK(data.ok());
  TrainerConfig config;
  config.num_workers = 4;
  config.batch_size = 8;
  config.local_optimizer = OptimizerConfig::Adam(0.002f);
  config.seed = 31;
  config.max_steps = 12;
  config.eval_every_steps = 4;
  config.eval_subset = 64;
  config.parallel_workers = true;
  config.population = 12;
  config.cohort_size = 4;
  config.cohort_steps = 3;
  auto factory = [] { return zoo::Mlp(16 * 16, {16}, 10); };
  DistributedTrainer trainer(factory, data->train, data->test, config);
  auto policy =
      MakeSyncPolicy(AlgorithmConfig::LinearFda(0.5), trainer.model_dim());
  FEDRA_CHECK(policy.ok());
  auto result = trainer.Run(policy->get());
  FEDRA_CHECK(result.ok());
  uint64_t hash = 0x811c9dc5ULL;
  for (const EvalPoint& p : result->history) {
    uint64_t bits;
    hash = HashU64(hash, p.step);
    std::memcpy(&bits, &p.test_accuracy, sizeof(bits));
    hash = HashU64(hash, bits);
    std::memcpy(&bits, &p.train_accuracy, sizeof(bits));
    hash = HashU64(hash, bits);
    hash = HashU64(hash, p.bytes);
    hash = HashU64(hash, p.sync_count);
  }
  return hash;
}

// Prints the workload hash; also a plain determinism check within one
// process. The sweep test below re-runs this test in child processes with
// FEDRA_NUM_THREADS pinned.
TEST(ClientStoreThreadSweepTest, HashModePrintsWorkloadHash) {
  const uint64_t hash = ComputeFleetSweepHash();
  EXPECT_EQ(hash, ComputeFleetSweepHash());
  std::printf("FLEETHASH %016llx\n", static_cast<unsigned long long>(hash));
}

TEST(ClientStoreThreadSweepTest, BitIdenticalAcrossThreadCounts) {
  if (std::getenv("FEDRA_FLEET_SWEEP_CHILD") != nullptr) {
    GTEST_SKIP() << "child process of the sweep";
  }
  // The global pool is sized once per process, so the sweep re-executes
  // this binary with FEDRA_NUM_THREADS pinned and compares the workload
  // hashes printed by HashModePrintsWorkloadHash.
  char exe[4096];
  const ssize_t len = readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (len <= 0) {
    GTEST_SKIP() << "cannot resolve /proc/self/exe on this platform";
  }
  exe[len] = '\0';
  auto hash_with_threads = [&](int threads) {
    std::string command =
        "FEDRA_FLEET_SWEEP_CHILD=1 FEDRA_NUM_THREADS=" +
        std::to_string(threads) + " '" + std::string(exe) +
        "' --gtest_filter='ClientStoreThreadSweepTest."
        "HashModePrintsWorkloadHash' 2>/dev/null";
    FILE* pipe = popen(command.c_str(), "r");
    if (pipe == nullptr) {
      return std::string("popen-failed");
    }
    std::string hash;
    char line[256];
    while (std::fgets(line, sizeof(line), pipe) != nullptr) {
      if (std::strncmp(line, "FLEETHASH ", 10) == 0) {
        hash.assign(line + 10);
        while (!hash.empty() &&
               (hash.back() == '\n' || hash.back() == '\r')) {
          hash.pop_back();
        }
      }
    }
    const int status = pclose(pipe);
    if (status != 0 || hash.empty()) {
      return std::string("child-failed");
    }
    return hash;
  };
  const std::string h1 = hash_with_threads(1);
  const std::string h4 = hash_with_threads(4);
  const std::string h16 = hash_with_threads(16);
  ASSERT_NE(h1, "popen-failed");
  ASSERT_NE(h1, "child-failed");
  EXPECT_EQ(h1, h4);
  EXPECT_EQ(h1, h16);
  char expected[32];
  std::snprintf(expected, sizeof(expected), "%016llx",
                static_cast<unsigned long long>(ComputeFleetSweepHash()));
  EXPECT_EQ(h1, expected);
}

// -------------------------------------------------- end-to-end smoke run --

TEST(ClientStoreTest, FleetTrainerSmokeOverSampledCohorts) {
  SynthImageConfig synth = MnistLikeConfig();
  synth.num_train = 256;
  synth.num_test = 128;
  synth.image_size = 16;
  auto data = GenerateSynthImages(synth);
  ASSERT_TRUE(data.ok());
  TrainerConfig config;
  config.num_workers = 4;
  config.batch_size = 8;
  config.local_optimizer = OptimizerConfig::Adam(0.002f);
  config.seed = 17;
  config.max_steps = 24;
  config.eval_every_steps = 8;
  config.eval_subset = 64;
  config.population = 50;
  config.cohort_size = 4;
  config.cohort_steps = 2;
  auto factory = [] { return zoo::Mlp(16 * 16, {16}, 10); };
  DistributedTrainer trainer(factory, data->train, data->test, config);
  auto policy =
      MakeSyncPolicy(AlgorithmConfig::LinearFda(0.5), trainer.model_dim());
  ASSERT_TRUE(policy.ok());
  auto result = trainer.Run(policy->get());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->history.empty());
  // Rotations over a 50-client population swap clients in and out, and
  // each non-initial arrival pays a check-in model download.
  EXPECT_GT(result->comm.check_in_syncs, 0u);
  EXPECT_GT(result->final_test_accuracy, 0.15);

  // Deterministic end to end: a second identical run reproduces the
  // history bit for bit.
  DistributedTrainer again(factory, data->train, data->test, config);
  auto policy2 =
      MakeSyncPolicy(AlgorithmConfig::LinearFda(0.5), again.model_dim());
  ASSERT_TRUE(policy2.ok());
  auto result2 = again.Run(policy2->get());
  ASSERT_TRUE(result2.ok());
  ASSERT_EQ(result->history.size(), result2->history.size());
  for (size_t i = 0; i < result->history.size(); ++i) {
    EXPECT_EQ(result->history[i].test_accuracy,
              result2->history[i].test_accuracy);
    EXPECT_EQ(result->history[i].bytes, result2->history[i].bytes);
  }
}

}  // namespace
}  // namespace fedra
