// Simulator tests: collectives compute exact means with correct byte and
// time accounting; network and straggler models behave as specified.

#include <vector>

#include <gtest/gtest.h>

#include "sim/collectives.h"
#include "sim/network_model.h"
#include "sim/straggler.h"
#include "util/rng.h"

namespace fedra {
namespace {

std::vector<std::vector<float>> RandomBuffers(int num_workers, size_t n,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> buffers(static_cast<size_t>(num_workers));
  for (auto& buffer : buffers) {
    buffer.resize(n);
    for (auto& x : buffer) {
      x = rng.NextUniform(-5.0f, 5.0f);
    }
  }
  return buffers;
}

std::vector<float*> Pointers(std::vector<std::vector<float>>& buffers) {
  std::vector<float*> pointers;
  for (auto& buffer : buffers) {
    pointers.push_back(buffer.data());
  }
  return pointers;
}

// ------------------------------------------------------------- AllReduce

class AllReduceTest
    : public ::testing::TestWithParam<std::tuple<int, AllReduceAlgorithm>> {};

TEST_P(AllReduceTest, ComputesExactMeanForAllWorkers) {
  const auto [num_workers, algorithm] = GetParam();
  const size_t n = 37;
  auto buffers = RandomBuffers(num_workers, n, 42);
  // Reference mean.
  std::vector<double> mean(n, 0.0);
  for (const auto& buffer : buffers) {
    for (size_t i = 0; i < n; ++i) {
      mean[i] += buffer[i];
    }
  }
  for (auto& m : mean) {
    m /= num_workers;
  }
  SimNetwork network(num_workers, NetworkModel::Hpc(), algorithm);
  auto pointers = Pointers(buffers);
  network.AllReduceAverage(pointers, n, TrafficClass::kModelSync);
  for (const auto& buffer : buffers) {
    for (size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(buffer[i], mean[i], 1e-5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkersAndAlgorithms, AllReduceTest,
    ::testing::Combine(::testing::Values(1, 2, 5, 16),
                       ::testing::Values(AllReduceAlgorithm::kFlat,
                                         AllReduceAlgorithm::kRing)));

TEST(AllReduceAccountingTest, FlatCountsOnePayloadPerWorker) {
  const size_t n = 100;
  SimNetwork network(4, NetworkModel::Hpc(), AllReduceAlgorithm::kFlat);
  auto buffers = RandomBuffers(4, n, 1);
  auto pointers = Pointers(buffers);
  network.AllReduceAverage(pointers, n, TrafficClass::kModelSync);
  EXPECT_EQ(network.stats().bytes_total, 4u * n * sizeof(float));
  EXPECT_EQ(network.stats().bytes_model_sync, 4u * n * sizeof(float));
  EXPECT_EQ(network.stats().bytes_local_state, 0u);
  EXPECT_EQ(network.stats().allreduce_calls, 1u);
  EXPECT_EQ(network.stats().model_sync_count, 1u);
}

TEST(AllReduceAccountingTest, RingCountsTwoKMinusOnePayloads) {
  const size_t n = 64;
  SimNetwork network(5, NetworkModel::Hpc(), AllReduceAlgorithm::kRing);
  auto buffers = RandomBuffers(5, n, 2);
  auto pointers = Pointers(buffers);
  network.AllReduceAverage(pointers, n, TrafficClass::kLocalState);
  EXPECT_EQ(network.stats().bytes_total, 2u * 4u * n * sizeof(float));
  EXPECT_EQ(network.stats().bytes_local_state,
            network.stats().bytes_total);
}

TEST(AllReduceAccountingTest, SingleWorkerIsFree) {
  SimNetwork network(1, NetworkModel::Federated(),
                     AllReduceAlgorithm::kFlat);
  auto buffers = RandomBuffers(1, 10, 3);
  auto pointers = Pointers(buffers);
  network.AllReduceAverage(pointers, 10, TrafficClass::kModelSync);
  EXPECT_EQ(network.stats().bytes_total, 0u);
  EXPECT_EQ(network.stats().comm_seconds, 0.0);
}

TEST(AllReduceAccountingTest, TrafficClassesAccumulateSeparately) {
  SimNetwork network(2, NetworkModel::Hpc(), AllReduceAlgorithm::kFlat);
  auto buffers = RandomBuffers(2, 8, 4);
  auto pointers = Pointers(buffers);
  network.AllReduceAverage(pointers, 8, TrafficClass::kLocalState);
  network.AllReduceAverage(pointers, 8, TrafficClass::kModelSync);
  EXPECT_EQ(network.stats().bytes_local_state,
            network.stats().bytes_model_sync);
  EXPECT_EQ(network.stats().bytes_total,
            network.stats().bytes_local_state +
                network.stats().bytes_model_sync);
  EXPECT_EQ(network.stats().model_sync_count, 1u);
}

TEST(WeightedAverageTest, UsesWeights) {
  SimNetwork network(2, NetworkModel::Hpc(), AllReduceAlgorithm::kFlat);
  std::vector<std::vector<float>> buffers = {{1.0f}, {5.0f}};
  auto pointers = Pointers(buffers);
  network.AllReduceWeightedAverage(pointers, {3.0, 1.0}, 1,
                                   TrafficClass::kModelSync);
  EXPECT_NEAR(buffers[0][0], (3.0f * 1.0f + 1.0f * 5.0f) / 4.0f, 1e-6);
  EXPECT_EQ(buffers[0][0], buffers[1][0]);
}

TEST(WeightedAverageDeathTest, ZeroWeightSumDies) {
  SimNetwork network(2, NetworkModel::Hpc(), AllReduceAlgorithm::kFlat);
  std::vector<std::vector<float>> buffers = {{1.0f}, {5.0f}};
  auto pointers = Pointers(buffers);
  EXPECT_DEATH(network.AllReduceWeightedAverage(
                   pointers, {0.0, 0.0}, 1, TrafficClass::kModelSync),
               "FEDRA_CHECK");
}

TEST(BroadcastTest, CopiesRootToAll) {
  SimNetwork network(3, NetworkModel::Hpc(), AllReduceAlgorithm::kFlat);
  std::vector<std::vector<float>> buffers = {{1.0f, 2.0f},
                                             {0.0f, 0.0f},
                                             {9.0f, 9.0f}};
  auto pointers = Pointers(buffers);
  network.Broadcast(pointers, 2, /*root=*/0, TrafficClass::kModelSync);
  for (const auto& buffer : buffers) {
    EXPECT_EQ(buffer[0], 1.0f);
    EXPECT_EQ(buffer[1], 2.0f);
  }
  EXPECT_EQ(network.stats().bytes_total, 2u * 2u * sizeof(float));
  // A broadcast is its own collective kind: K-1 transfers, counted as a
  // model synchronization for kModelSync traffic, never as an AllReduce.
  EXPECT_EQ(network.stats().broadcast_calls, 1u);
  EXPECT_EQ(network.stats().allreduce_calls, 0u);
  EXPECT_EQ(network.stats().model_sync_count, 1u);
}

TEST(PointToPointTest, AccountsPayload) {
  SimNetwork network(3, NetworkModel::Federated(),
                     AllReduceAlgorithm::kFlat);
  network.PointToPoint(100, TrafficClass::kLocalState);
  EXPECT_EQ(network.stats().bytes_total, 400u);
  EXPECT_GT(network.stats().comm_seconds, 0.0);
}

TEST(SimNetworkTest, ResetStatsClears) {
  SimNetwork network(2, NetworkModel::Hpc(), AllReduceAlgorithm::kFlat);
  auto buffers = RandomBuffers(2, 8, 5);
  auto pointers = Pointers(buffers);
  network.AllReduceAverage(pointers, 8, TrafficClass::kModelSync);
  network.ResetStats();
  EXPECT_EQ(network.stats().bytes_total, 0u);
  EXPECT_EQ(network.stats().allreduce_calls, 0u);
}

// ---------------------------------------------------------- NetworkModel

TEST(NetworkModelTest, PresetsAreOrderedByBandwidth) {
  EXPECT_GT(NetworkModel::Hpc().bandwidth_bytes_per_sec,
            NetworkModel::Balanced().bandwidth_bytes_per_sec);
  EXPECT_GT(NetworkModel::Balanced().bandwidth_bytes_per_sec,
            NetworkModel::Federated().bandwidth_bytes_per_sec);
}

TEST(NetworkModelTest, TimeGrowsWithPayload) {
  NetworkModel model = NetworkModel::Federated();
  const double small =
      model.AllReduceSeconds(1000, 4, AllReduceAlgorithm::kFlat);
  const double large =
      model.AllReduceSeconds(1000000, 4, AllReduceAlgorithm::kFlat);
  EXPECT_GT(large, small);
}

TEST(NetworkModelTest, SlowNetworkIsSlower) {
  const size_t payload = 10 * 1000 * 1000;
  const double fast = NetworkModel::Hpc().AllReduceSeconds(
      payload, 8, AllReduceAlgorithm::kFlat);
  const double slow = NetworkModel::Federated().AllReduceSeconds(
      payload, 8, AllReduceAlgorithm::kFlat);
  EXPECT_GT(slow, 10.0 * fast);
}

TEST(NetworkModelTest, TotalBytesFormulas) {
  EXPECT_EQ(NetworkModel::AllReduceTotalBytes(100, 4,
                                              AllReduceAlgorithm::kFlat),
            400u);
  EXPECT_EQ(NetworkModel::AllReduceTotalBytes(100, 4,
                                              AllReduceAlgorithm::kRing),
            600u);
  EXPECT_EQ(NetworkModel::AllReduceTotalBytes(
                100, 4, AllReduceAlgorithm::kRecursiveHalving),
            600u);
  EXPECT_EQ(NetworkModel::AllReduceTotalBytes(100, 1,
                                              AllReduceAlgorithm::kFlat),
            0u);
}

// -------------------------------------------------------------- straggler

TEST(StragglerTest, NoneIsDeterministicBase) {
  StragglerModel model = StragglerModel::None(0.02);
  Rng rng(1);
  EXPECT_EQ(model.SampleWorkerFactor(&rng), 1.0);
  EXPECT_DOUBLE_EQ(model.SampleStepSeconds(1.0, &rng), 0.02);
}

TEST(StragglerTest, HeavyProducesSlowWorkers) {
  StragglerModel model = StragglerModel::Heavy(0.01);
  Rng rng(2);
  int slow = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    if (model.SampleWorkerFactor(&rng) > 1.0) {
      ++slow;
    }
  }
  EXPECT_NEAR(static_cast<double>(slow) / n, 0.2, 0.05);
}

TEST(StragglerTest, SlowFactorScalesStepTime) {
  StragglerModel model = StragglerModel::None(0.01);
  Rng rng(3);
  EXPECT_DOUBLE_EQ(model.SampleStepSeconds(8.0, &rng), 0.08);
}

TEST(StragglerTest, JitterHasExpectedSpread) {
  StragglerModel model;
  model.base_step_seconds = 0.01;
  model.lognormal_sigma = 0.5;
  Rng rng(4);
  double min_t = 1e9;
  double max_t = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double t = model.SampleStepSeconds(1.0, &rng);
    min_t = std::min(min_t, t);
    max_t = std::max(max_t, t);
  }
  EXPECT_LT(min_t, 0.01);
  EXPECT_GT(max_t, 0.01);
  EXPECT_GT(max_t / min_t, 2.0);
}

// -------------------------------------------------------------- CommStats

TEST(CommStatsTest, MergeAccumulates) {
  CommStats a;
  a.allreduce_calls = 2;
  a.broadcast_calls = 1;
  a.p2p_calls = 3;
  a.bytes_total = 100;
  a.bytes_model_sync = 60;
  a.bytes_local_state = 40;
  a.comm_seconds = 1.5;
  a.seconds_local_state = 0.5;
  a.seconds_model_sync = 1.0;
  a.seconds_intra = 0.25;
  a.seconds_uplink = 1.25;
  CommStats b = a;
  a.Merge(b);
  EXPECT_EQ(a.allreduce_calls, 4u);
  EXPECT_EQ(a.broadcast_calls, 2u);
  EXPECT_EQ(a.p2p_calls, 6u);
  EXPECT_EQ(a.bytes_total, 200u);
  EXPECT_DOUBLE_EQ(a.comm_seconds, 3.0);
  EXPECT_DOUBLE_EQ(a.seconds_local_state, 1.0);
  EXPECT_DOUBLE_EQ(a.seconds_model_sync, 2.0);
  EXPECT_DOUBLE_EQ(a.seconds_intra, 0.5);
  EXPECT_DOUBLE_EQ(a.seconds_uplink, 2.5);
}

TEST(CommStatsTest, GigabytesConversion) {
  CommStats stats;
  stats.bytes_total = 2ULL * 1024 * 1024 * 1024;
  EXPECT_DOUBLE_EQ(stats.gigabytes_total(), 2.0);
}

TEST(CommStatsTest, ToStringMentionsTotals) {
  CommStats stats;
  stats.bytes_total = 1024;
  EXPECT_NE(stats.ToString().find("1.00 KB"), std::string::npos);
}

}  // namespace
}  // namespace fedra
