// WireCodec stage-pipeline tests: per-stage wire-size goldens, round-trip
// composition, deterministic tie-breaking, allocation-free hot path,
// error-feedback residual paging through ClientStateStore (fleet rotation),
// payload-carrying subset billing, and the compressed-hierarchy composition
// the pipeline unlocked.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/client_store.h"
#include "core/compression.h"
#include "core/fda_policy.h"
#include "data/synth.h"
#include "nn/zoo.h"
#include "sim/collectives.h"
#include "sim/topology_tree.h"
#include "tensor/vec_ops.h"
#include "util/rng.h"

namespace fedra {
namespace {

std::vector<float> RandomVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) {
    x = rng.NextGaussian(0.0f, 1.0f);
  }
  return v;
}

// ----------------------------------------------------------- stage configs

TEST(CodecStageTest, FactoriesValidateAndPrint) {
  EXPECT_TRUE(CodecStageConfig::TopK(0.05).Validate().ok());
  EXPECT_TRUE(CodecStageConfig::LayerTopK(0.1).Validate().ok());
  EXPECT_TRUE(CodecStageConfig::Quantize(8).Validate().ok());
  EXPECT_FALSE(CodecStageConfig::TopK(0.0).Validate().ok());
  EXPECT_FALSE(CodecStageConfig::TopK(1.5).Validate().ok());
  EXPECT_FALSE(CodecStageConfig::Quantize(1).Validate().ok());
  EXPECT_FALSE(CodecStageConfig::Quantize(17).Validate().ok());
  EXPECT_EQ(CompressionConfig::TopKQuantize(0.05, 8).ToString(), "top5%+q8");
}

TEST(CodecStageTest, PipelineValidationRules) {
  // kind and stages are mutually exclusive.
  CompressionConfig mixed = CompressionConfig::Quantize8();
  mixed.stages.push_back(CodecStageConfig::TopK(0.1));
  EXPECT_FALSE(mixed.Validate().ok());
  // At most one mask stage.
  EXPECT_FALSE(CompressionConfig::Stages({CodecStageConfig::TopK(0.1),
                                          CodecStageConfig::LayerTopK(0.1)})
                   .Validate()
                   .ok());
  // At most one quantize stage.
  EXPECT_FALSE(CompressionConfig::Stages({CodecStageConfig::Quantize(8),
                                          CodecStageConfig::Quantize(4)})
                   .Validate()
                   .ok());
  // Mask must precede quantize (quantize-then-mask would re-rank on
  // already-rounded magnitudes).
  EXPECT_FALSE(CompressionConfig::Stages({CodecStageConfig::Quantize(8),
                                          CodecStageConfig::TopK(0.1)})
                   .Validate()
                   .ok());
  EXPECT_TRUE(CompressionConfig::Stages({CodecStageConfig::TopK(0.1),
                                         CodecStageConfig::Quantize(8)})
                  .Validate()
                  .ok());
}

TEST(CodecStageTest, NoneStaysDisabledAndStagePipelinesEnable) {
  EXPECT_FALSE(CompressionConfig::None().enabled());
  EXPECT_TRUE(CompressionConfig::Quantize8().enabled());
  EXPECT_TRUE(
      CompressionConfig::Stages({CodecStageConfig::TopK(0.1)}).enabled());
}

// ------------------------------------------------------- wire-size goldens

TEST(CodecWireTest, StageGoldensMatchWireModel) {
  const size_t n = 10000;
  // Stacked top-5% + q8: 500 kept * (4 index + 1 value) + 4 scale bytes.
  SyncCompressor stack(CompressionConfig::TopKQuantize(0.05, 8), n, 1);
  EXPECT_EQ(stack.WireBytes(n), 500u * 4u + 500u + 4u);
  // Top-5% + q4: values pack two per byte.
  SyncCompressor stack4(CompressionConfig::TopKQuantize(0.05, 4), n, 1);
  EXPECT_EQ(stack4.WireBytes(n), 500u * 4u + 250u + 4u);
  // Single-stage pipelines reproduce the historical single-codec sizes.
  SyncCompressor q8(
      CompressionConfig::Stages({CodecStageConfig::Quantize(8)}), n, 1);
  EXPECT_EQ(q8.WireBytes(n), n + 4u);
  SyncCompressor q4(
      CompressionConfig::Stages({CodecStageConfig::Quantize(4)}), n, 1);
  EXPECT_EQ(q4.WireBytes(n), (n + 1u) / 2u + 4u);
  SyncCompressor topk(
      CompressionConfig::Stages({CodecStageConfig::TopK(0.05)}), n, 1);
  EXPECT_EQ(topk.WireBytes(n), 500u * 8u);
  // ...and equal their legacy-kind twins byte for byte.
  SyncCompressor legacy_q4(CompressionConfig::Quantize4(), n, 1);
  EXPECT_EQ(q4.WireBytes(n), legacy_q4.WireBytes(n));
  SyncCompressor legacy_topk(CompressionConfig::TopK(0.05), n, 1);
  EXPECT_EQ(topk.WireBytes(n), legacy_topk.WireBytes(n));
}

TEST(CodecWireTest, CompressInPlaceReturnsWireBytes) {
  const size_t n = 512;
  SyncCompressor stack(CompressionConfig::TopKQuantize(0.1, 8), n, 1);
  auto v = RandomVec(n, 11);
  EXPECT_EQ(stack.CompressInPlace(0, v.data(), n), stack.WireBytes(n));
}

// -------------------------------------------------------- stage round-trip

TEST(CodecPipelineTest, TopKThenQuantizeComposes) {
  const size_t n = 1000;
  auto v = RandomVec(n, 12);
  auto original = v;
  SyncCompressor stack(CompressionConfig::TopKQuantize(0.05, 8, false), n, 1);
  stack.CompressInPlace(0, v.data(), n);
  // The mask keeps exactly 50 coordinates; quantization must not densify
  // (zeros stay zero), so the payload is still 50-sparse.
  size_t nonzero = 0;
  float max_kept = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    if (v[i] != 0.0f) {
      ++nonzero;
      max_kept = std::max(max_kept, std::fabs(original[i]));
    }
  }
  EXPECT_LE(nonzero, 50u);
  EXPECT_GT(nonzero, 0u);
  // Survivors are quantized to the 8-bit grid of the masked vector's max.
  const float step = max_kept / 127.0f;
  for (size_t i = 0; i < n; ++i) {
    if (v[i] != 0.0f) {
      EXPECT_LE(std::fabs(v[i] - original[i]), 0.5f * step + 1e-6f);
    }
  }
}

TEST(CodecPipelineTest, LayerTopKKeepsEveryLayerAlive) {
  // Two 8-float layers; all the magnitude lives in layer 0. Global top-25%
  // would starve layer 1 entirely — layer-wise keeps 2 from each.
  const size_t n = 16;
  std::vector<float> v(n, 0.0f);
  for (size_t i = 0; i < 8; ++i) {
    v[i] = 10.0f + static_cast<float>(i);
  }
  for (size_t i = 8; i < 16; ++i) {
    v[i] = 0.01f * static_cast<float>(i - 7);
  }
  SyncCompressor codec(
      CompressionConfig::Stages({CodecStageConfig::LayerTopK(0.25)}), n, 1);
  codec.SetLayerOffsets({0, 8}, n);
  auto payload = v;
  codec.CompressInPlace(0, payload.data(), n);
  size_t kept_head = 0;
  size_t kept_tail = 0;
  for (size_t i = 0; i < 8; ++i) {
    kept_head += payload[i] != 0.0f;
  }
  for (size_t i = 8; i < 16; ++i) {
    kept_tail += payload[i] != 0.0f;
  }
  EXPECT_EQ(kept_head, 2u);
  EXPECT_EQ(kept_tail, 2u);
  // And the wire model agrees: 4 kept coordinates at 4+4 bytes each.
  EXPECT_EQ(codec.WireBytes(n), 4u * 8u);
}

// ------------------------------------------------- deterministic tie-break

TEST(CodecDeterminismTest, MagnitudeTiesBreakToLowestIndex) {
  // Every coordinate has |v| == 1: nth_element alone would make the kept
  // set implementation-defined. The codec's comparator breaks ties by
  // ascending index, so the survivors are exactly the lowest indices.
  const size_t n = 8;
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = (i % 2 == 0) ? 1.0f : -1.0f;
  }
  SyncCompressor codec(CompressionConfig::TopK(0.25, false), n, 1);
  auto payload = v;
  codec.CompressInPlace(0, payload.data(), n);
  EXPECT_EQ(payload[0], 1.0f);
  EXPECT_EQ(payload[1], -1.0f);
  for (size_t i = 2; i < n; ++i) {
    EXPECT_EQ(payload[i], 0.0f);
  }
  // MaskPreview selects the same set without touching the data.
  EXPECT_EQ(codec.MaskPreview(v.data(), n), 2u);
  ASSERT_EQ(codec.kept_indices().size(), 2u);
  EXPECT_EQ(codec.kept_indices()[0], 0u);
  EXPECT_EQ(codec.kept_indices()[1], 1u);
}

// -------------------------------------------------- allocation-free path

TEST(CodecScratchTest, HotPathNeverReallocates) {
  const size_t n = 2048;
  SyncCompressor codec(CompressionConfig::TopKQuantize(0.05, 8), n, 4);
  for (int round = 0; round < 50; ++round) {
    for (int worker = 0; worker < 4; ++worker) {
      auto v = RandomVec(n, 100 + static_cast<uint64_t>(round));
      codec.CompressInPlace(worker, v.data(), n);
      codec.MaskPreview(v.data(), n);
    }
  }
  EXPECT_EQ(codec.scratch_reallocs(), 0u);
}

// --------------------------------------- EF residuals under fleet rotation

TEST(CodecResidualPagingTest, StoreRoundTripsResiduals) {
  ClientStoreConfig config;
  config.population = 4;
  config.cohort_slots = 2;
  config.dim = 8;
  config.opt_state_slots = 0;
  config.seed = 1;
  ClientStateStore store(config);
  store.SetStateSize(0);
  store.SetResidualSize(8);

  std::vector<float> anchor(8, 0.0f);
  std::vector<float> params(8, 1.0f);
  std::vector<float> residual(8);
  for (size_t i = 0; i < 8; ++i) {
    residual[i] = static_cast<float>(i + 1);
  }
  store.AdoptInitialResident(2);
  store.CheckOut(2, params.data(), anchor.data(), nullptr, Rng(1), Rng(2),
                 /*optimizer_steps=*/3, /*steps_this_residency=*/1, nullptr,
                 residual.data());

  std::vector<float> params_out(8, 0.0f);
  std::vector<float> residual_out(8, -1.0f);
  auto restored = store.CheckIn(2, anchor.data(), params_out.data(), nullptr,
                                nullptr, residual_out.data());
  EXPECT_TRUE(restored.restored);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(residual_out[i], residual[i]);
  }
  // A fresh client pages in with empty compression memory.
  std::fill(residual_out.begin(), residual_out.end(), -1.0f);
  auto fresh = store.CheckIn(3, anchor.data(), params_out.data(), nullptr,
                             nullptr, residual_out.data());
  EXPECT_TRUE(fresh.first_touch);
  for (float x : residual_out) {
    EXPECT_EQ(x, 0.0f);
  }
}

TEST(CodecResidualPagingTest, RotationPreservesErrorFeedbackBitExactly) {
  // Compressor A runs 10 rounds resident; compressor B pages its residual
  // out to a ClientStateStore slot and back in between every round. The
  // error-feedback trajectory must be bit-identical — rotation is memory
  // movement, not an algorithm change.
  const size_t n = 32;
  const auto input = RandomVec(n, 7);
  SyncCompressor resident(CompressionConfig::TopK(0.1, true), n, 1);
  SyncCompressor rotated(CompressionConfig::TopK(0.1, true), n, 1);

  ClientStoreConfig config;
  config.population = 2;
  config.cohort_slots = 1;
  config.dim = n;
  config.opt_state_slots = 0;
  config.seed = 9;
  ClientStateStore store(config);
  store.SetStateSize(0);
  store.SetResidualSize(n);
  std::vector<float> anchor(n, 0.0f);
  std::vector<float> params(n, 0.5f);
  std::vector<float> params_out(n);
  store.AdoptInitialResident(0);

  for (int round = 0; round < 10; ++round) {
    auto a = input;
    resident.CompressInPlace(0, a.data(), n);
    auto b = input;
    rotated.CompressInPlace(0, b.data(), n);
    ASSERT_EQ(std::memcmp(a.data(), b.data(), n * sizeof(float)), 0);
    // Rotate worker 0's client out and back in through a page.
    store.CheckOut(0, params.data(), anchor.data(), nullptr, Rng(1), Rng(2),
                   1, 1, nullptr, rotated.ResidualData(0));
    rotated.ResetWorker(0);
    store.CheckIn(0, anchor.data(), params_out.data(), nullptr, nullptr,
                  rotated.ResidualData(0));
  }
  ASSERT_EQ(std::memcmp(resident.ResidualData(0), rotated.ResidualData(0),
                        n * sizeof(float)),
            0);
}

TEST(CodecResidualTest, ErrorFeedbackBeatsNoFeedbackOnCumulativeError) {
  // Transmit the same vector R times through an aggressive mask. Without
  // EF the dropped 90% is lost every round (cumulative error grows
  // linearly: R * ||dropped||); with EF the backlog re-enters and the
  // cumulative transmitted sum tracks R * input to within the bounded
  // residual.
  const size_t n = 64;
  const int rounds = 50;
  const auto input = RandomVec(n, 21);
  SyncCompressor with_ef(CompressionConfig::TopK(0.1, true), n, 1);
  SyncCompressor no_ef(CompressionConfig::TopK(0.1, false), n, 1);
  std::vector<double> sum_ef(n, 0.0);
  std::vector<double> sum_no(n, 0.0);
  for (int round = 0; round < rounds; ++round) {
    auto a = input;
    with_ef.CompressInPlace(0, a.data(), n);
    auto b = input;
    no_ef.CompressInPlace(0, b.data(), n);
    for (size_t i = 0; i < n; ++i) {
      sum_ef[i] += a[i];
      sum_no[i] += b[i];
    }
  }
  double err_ef = 0.0;
  double err_no = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double target = static_cast<double>(rounds) * input[i];
    err_ef += (sum_ef[i] - target) * (sum_ef[i] - target);
    err_no += (sum_no[i] - target) * (sum_no[i] - target);
  }
  EXPECT_LT(err_ef, 0.05 * err_no);
}

// ------------------------------------------------- payload subset billing

TEST(PayloadCollectiveTest, SubsetBillsExactlyTheStatedPayloads) {
  // Oracle: a subset AllReduce of m compressed payloads of B bytes each
  // must bill exactly like an uncompressed subset AllReduce whose span is
  // B bytes long — the codec only changes the stated payload size.
  const size_t n = 100;            // decompressed span: 400 bytes
  const size_t wire_floats = 10;   // compressed wire: 40 bytes
  const std::vector<int> participants = {0, 1, 2};

  SimNetwork compressed(4, NetworkModel::Federated(),
                        AllReduceAlgorithm::kFlat);
  std::vector<std::vector<float>> buffers;
  std::vector<float*> pointers;
  for (int i = 0; i < 3; ++i) {
    buffers.push_back(RandomVec(n, 30 + static_cast<uint64_t>(i)));
  }
  std::vector<double> mean(n, 0.0);
  for (const auto& buffer : buffers) {
    for (size_t i = 0; i < n; ++i) {
      mean[i] += buffer[i] / 3.0;
    }
  }
  for (auto& buffer : buffers) {
    pointers.push_back(buffer.data());
  }
  const std::vector<size_t> payloads(3, wire_floats * sizeof(float));
  compressed.AllReduceAverageSubsetWithPayloads(pointers, participants, n,
                                                payloads,
                                                TrafficClass::kModelSync);

  SimNetwork oracle(4, NetworkModel::Federated(), AllReduceAlgorithm::kFlat);
  std::vector<std::vector<float>> small(3, std::vector<float>(wire_floats));
  std::vector<float*> small_ptrs;
  for (auto& buffer : small) {
    small_ptrs.push_back(buffer.data());
  }
  oracle.AllReduceAverageSubset(small_ptrs, participants, wire_floats,
                                TrafficClass::kModelSync);

  EXPECT_EQ(compressed.stats().bytes_total, oracle.stats().bytes_total);
  EXPECT_DOUBLE_EQ(compressed.stats().comm_seconds,
                   oracle.stats().comm_seconds);
  // The payload-carrying version still installs the exact mean everywhere.
  for (const auto& buffer : buffers) {
    for (size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(buffer[i], mean[i], 1e-5);
    }
  }
}

// -------------------------------------- compressed hierarchy composition

TEST(CompressedHierarchyTest, SubtreeSyncsBillCompressedBytes) {
  // The combination HierarchicalFdaPolicy x sync_compression used to be a
  // FEDRA_CHECK abort. Now the cluster-local resolutions move coded deltas:
  // same local-only schedule, strictly fewer intra-tier bytes, still
  // exactly zero uplink.
  SynthImageConfig data_config = MnistLikeConfig();
  data_config.num_train = 512;
  data_config.num_test = 256;
  data_config.image_size = 16;
  auto data = GenerateSynthImages(data_config);
  ASSERT_TRUE(data.ok());
  ModelFactory factory = [] { return zoo::Mlp(16 * 16, {24}, 10); };

  auto run = [&](CompressionConfig compression, uint64_t* local_syncs,
                 uint64_t* global_syncs) {
    TrainerConfig config;
    config.num_workers = 4;
    config.batch_size = 16;
    config.local_optimizer = OptimizerConfig::Adam(0.002f);
    config.seed = 23;
    config.max_steps = 30;
    config.eval_every_steps = 15;
    config.eval_subset = 128;
    config.topology = TopologyTree::FromHierarchy(
        HierarchicalNetworkModel::EdgeCloud(2));
    config.sync_compression = compression;
    DistributedTrainer trainer(factory, data->train, data->test, config);
    HierarchicalFdaConfig policy_config;
    policy_config.monitor.kind = MonitorKind::kLinear;
    policy_config.theta_by_depth = {1e18, 0.0};  // local-only trips
    auto policy = MakeHierarchicalFdaPolicy(policy_config,
                                            trainer.model_dim());
    FEDRA_CHECK(policy.ok()) << policy.status();
    auto result = trainer.Run(policy->get());
    FEDRA_CHECK(result.ok()) << result.status();
    *local_syncs = (*policy)->local_sync_count();
    *global_syncs = (*policy)->global_sync_count();
    return *result;
  };

  uint64_t plain_local = 0;
  uint64_t plain_global = 0;
  TrainResult plain =
      run(CompressionConfig::None(), &plain_local, &plain_global);
  uint64_t coded_local = 0;
  uint64_t coded_global = 0;
  TrainResult coded = run(CompressionConfig::TopKQuantize(0.05, 8),
                          &coded_local, &coded_global);

  // Identical schedule shape: local tier controls drift, uplink silent.
  EXPECT_GT(coded_local, 0u);
  EXPECT_EQ(coded_global, 0u);
  EXPECT_EQ(plain_global, 0u);
  EXPECT_EQ(coded.comm.BytesAtDepth(0), 0u);
  // The coded subtree resolutions move far fewer bytes per sync.
  ASSERT_GT(plain_local, 0u);
  const double plain_per_sync =
      static_cast<double>(plain.comm.bytes_model_sync) /
      static_cast<double>(plain_local);
  const double coded_per_sync =
      static_cast<double>(coded.comm.bytes_model_sync) /
      static_cast<double>(coded_local);
  EXPECT_LT(coded_per_sync, 0.3 * plain_per_sync);
}

}  // namespace
}  // namespace fedra
