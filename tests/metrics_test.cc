// Tests for the metrics module: KDE estimators, summary statistics,
// least-squares fits (the Fig. 12 machinery), ASCII plots, and model
// evaluation.

#include <cmath>

#include <gtest/gtest.h>

#include "data/synth.h"
#include "metrics/ascii_plot.h"
#include "metrics/evaluation.h"
#include "metrics/kde.h"
#include "metrics/summary.h"
#include "nn/zoo.h"
#include "util/rng.h"

namespace fedra {
namespace {

// -------------------------------------------------------------------- KDE

TEST(Kde1dTest, DensityIntegratesToOne) {
  Rng rng(1);
  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) {
    samples.push_back(rng.NextGaussian());
  }
  Kde1d kde(samples);
  // Trapezoid integration over a wide interval.
  double integral = 0.0;
  const double lo = -6.0;
  const double hi = 6.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const double x = lo + (hi - lo) * i / (n - 1);
    integral += kde.Density(x) * (hi - lo) / (n - 1);
  }
  EXPECT_NEAR(integral, 1.0, 0.02);
}

TEST(Kde1dTest, ModeNearSampleMean) {
  Rng rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) {
    samples.push_back(3.0 + 0.5 * rng.NextGaussian());
  }
  Kde1d kde(samples);
  EXPECT_NEAR(kde.Mode(), 3.0, 0.3);
}

TEST(Kde1dTest, BimodalModesDetected) {
  Rng rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 300; ++i) {
    samples.push_back(-2.0 + 0.3 * rng.NextGaussian());
  }
  for (int i = 0; i < 600; ++i) {
    samples.push_back(2.0 + 0.3 * rng.NextGaussian());
  }
  Kde1d kde(samples, 0.3);
  // Larger cluster wins the global mode.
  EXPECT_NEAR(kde.Mode(), 2.0, 0.4);
}

TEST(Kde1dTest, DegenerateSamplesHandled) {
  Kde1d kde({5.0, 5.0, 5.0});
  EXPECT_GT(kde.Density(5.0), 0.0);
  EXPECT_DOUBLE_EQ(kde.Mode(), 5.0);
}

TEST(Kde2dTest, DensityPeaksAtCluster) {
  Rng rng(4);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 400; ++i) {
    xs.push_back(1.0 + 0.2 * rng.NextGaussian());
    ys.push_back(-1.0 + 0.2 * rng.NextGaussian());
  }
  Kde2d kde(xs, ys);
  EXPECT_GT(kde.Density(1.0, -1.0), kde.Density(3.0, 3.0));
  auto mode = kde.FindMode();
  EXPECT_NEAR(mode.x, 1.0, 0.3);
  EXPECT_NEAR(mode.y, -1.0, 0.3);
}

TEST(Kde2dTest, IntegratesToOneOnGrid) {
  Rng rng(5);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 150; ++i) {
    xs.push_back(rng.NextGaussian());
    ys.push_back(rng.NextGaussian());
  }
  Kde2d kde(xs, ys);
  double integral = 0.0;
  const double lo = -5.0;
  const double hi = 5.0;
  const int n = 120;
  const double cell = (hi - lo) / n;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      integral += kde.Density(lo + (i + 0.5) * cell, lo + (j + 0.5) * cell) *
                  cell * cell;
    }
  }
  EXPECT_NEAR(integral, 1.0, 0.05);
}

TEST(ScottBandwidthTest, ShrinksWithSampleSize) {
  EXPECT_GT(ScottBandwidth(1.0, 10, 2), ScottBandwidth(1.0, 10000, 2));
  EXPECT_GT(ScottBandwidth(1.0, 100, 1), 0.0);
}

// ---------------------------------------------------------------- summary

TEST(SummaryTest, BasicStatistics) {
  SummaryStats stats = Summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(stats.count, 5u);
  EXPECT_DOUBLE_EQ(stats.mean, 3.0);
  EXPECT_DOUBLE_EQ(stats.median, 3.0);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 5.0);
  EXPECT_NEAR(stats.stddev, std::sqrt(2.5), 1e-12);
}

TEST(SummaryTest, EmptyGivesZeros) {
  SummaryStats stats = Summarize({});
  EXPECT_EQ(stats.count, 0u);
  EXPECT_EQ(stats.mean, 0.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> values = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 10.0);
}

TEST(FitLinearTest, RecoversExactLine) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> ys;
  for (double x : xs) {
    ys.push_back(2.5 * x - 1.0);
  }
  LinearFit fit = FitLinear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitProportionalTest, RecoversSlopeThroughOrigin) {
  // The form of the paper's Theta ~= c*d lines (Fig. 12).
  std::vector<double> xs = {62e3, 2.6e6, 6.9e6, 18e6};
  std::vector<double> ys;
  for (double x : xs) {
    ys.push_back(4.91e-5 * x);
  }
  LinearFit fit = FitProportional(xs, ys);
  EXPECT_NEAR(fit.slope, 4.91e-5, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(FitProportionalTest, NoisyDataStillClose) {
  Rng rng(6);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 1; i <= 50; ++i) {
    const double x = 100.0 * i;
    xs.push_back(x);
    ys.push_back(0.02 * x * (1.0 + 0.1 * rng.NextGaussian()));
  }
  LinearFit fit = FitProportional(xs, ys);
  EXPECT_NEAR(fit.slope, 0.02, 0.002);
  EXPECT_GT(fit.r_squared, 0.9);
}

TEST(GeometricMeanTest, Computes) {
  EXPECT_DOUBLE_EQ(GeometricMean({1.0, 100.0}), 10.0);
  EXPECT_NEAR(GeometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

// -------------------------------------------------------------- asciiplot

TEST(AsciiPlotTest, RendersSeriesAndLegend) {
  ScatterSeries series;
  series.label = "SketchFDA";
  series.glyph = 's';
  series.xs = {1.0, 10.0, 100.0};
  series.ys = {1000.0, 100.0, 10.0};
  ScatterOptions options;
  options.title = "comm vs steps";
  options.x_label = "GB";
  options.y_label = "steps";
  const std::string plot = RenderScatter({series}, options);
  EXPECT_NE(plot.find("comm vs steps"), std::string::npos);
  EXPECT_NE(plot.find("s = SketchFDA"), std::string::npos);
  EXPECT_NE(plot.find('s'), std::string::npos);
  EXPECT_NE(plot.find("[log]"), std::string::npos);
}

TEST(AsciiPlotTest, DropsNonPositiveOnLogAxes) {
  ScatterSeries series;
  series.label = "bad";
  series.glyph = 'b';
  series.xs = {-1.0, 0.0};
  series.ys = {1.0, 1.0};
  const std::string plot = RenderScatter({series}, {});
  EXPECT_NE(plot.find("no plottable points"), std::string::npos);
}

TEST(AsciiPlotTest, SinglePointRenders) {
  ScatterSeries series;
  series.label = "dot";
  series.glyph = '*';
  series.xs = {5.0};
  series.ys = {7.0};
  const std::string plot = RenderScatter({series}, {});
  EXPECT_NE(plot.find('*'), std::string::npos);
}

TEST(AsciiPlotTest, OverlapsBecomeHash) {
  ScatterSeries a;
  a.label = "a";
  a.glyph = 'a';
  a.xs = {1.0, 100.0};
  a.ys = {1.0, 100.0};
  ScatterSeries b = a;
  b.label = "b";
  b.glyph = 'b';
  const std::string plot = RenderScatter({a, b}, {});
  EXPECT_NE(plot.find('#'), std::string::npos);
}

// ------------------------------------------------------------- evaluation

TEST(EvaluationTest, PerfectModelScoresOne) {
  // Train a tiny MLP to memorize a small synthetic set, then Evaluate.
  SynthImageConfig config = MnistLikeConfig();
  config.num_train = 64;
  config.num_test = 64;
  config.noise_stddev = 0.05f;
  config.num_classes = 4;
  auto data = GenerateSynthImages(config);
  ASSERT_TRUE(data.ok());
  auto model = zoo::Mlp(16 * 16, {32}, 4);
  model->InitParams(9);
  // Untrained accuracy ~ chance.
  EvalResult before = Evaluate(model.get(), data->test);
  EXPECT_LT(before.accuracy, 0.6);
  EXPECT_EQ(before.samples, 64u);
  EXPECT_GT(before.mean_loss, 0.5);
}

TEST(EvaluationTest, SubsetIsDeterministicAndSmaller) {
  SynthImageConfig config = MnistLikeConfig();
  config.num_train = 32;
  config.num_test = 128;
  auto data = GenerateSynthImages(config);
  ASSERT_TRUE(data.ok());
  auto model = zoo::Mlp(16 * 16, {16}, 10);
  model->InitParams(10);
  EvalResult a = EvaluateSubset(model.get(), data->test, 32, 5);
  EvalResult b = EvaluateSubset(model.get(), data->test, 32, 5);
  EXPECT_EQ(a.samples, 32u);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  // Different seed may sample differently.
  EvalResult c = EvaluateSubset(model.get(), data->test, 32, 6);
  EXPECT_EQ(c.samples, 32u);
}

TEST(EvaluationTest, SubsetLargerThanDatasetFallsBack) {
  SynthImageConfig config = MnistLikeConfig();
  config.num_train = 16;
  config.num_test = 16;
  auto data = GenerateSynthImages(config);
  ASSERT_TRUE(data.ok());
  auto model = zoo::Mlp(16 * 16, {8}, 10);
  model->InitParams(11);
  EvalResult result = EvaluateSubset(model.get(), data->test, 1000, 7);
  EXPECT_EQ(result.samples, 16u);
}

}  // namespace
}  // namespace fedra
