// Shared test helpers: random tensor filling and finite-difference gradient
// checking for layers and models.

#ifndef FEDRA_TESTS_TEST_UTIL_H_
#define FEDRA_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include "nn/layer.h"
#include "nn/model.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace fedra {
namespace testing {

inline void FillUniform(Tensor* t, Rng* rng, float lo = -1.0f,
                        float hi = 1.0f) {
  for (size_t i = 0; i < t->numel(); ++i) {
    (*t)[i] = rng->NextUniform(lo, hi);
  }
}

inline void FillUniform(float* data, size_t n, Rng* rng, float lo = -1.0f,
                        float hi = 1.0f) {
  for (size_t i = 0; i < n; ++i) {
    data[i] = rng->NextUniform(lo, hi);
  }
}

/// Standalone execution environment for a single layer: a finalized
/// ParameterStore with owned buffers, a LayerStateStore, and the
/// ExecContext tying them together. Registers + binds + (optionally)
/// initializes the layer on construction.
class LayerHarness {
 public:
  explicit LayerHarness(Layer* layer, uint64_t init_seed = 1) : layer_(layer) {
    layer_->RegisterParams(&store_);
    store_.Finalize();
    layer_->BindOffsets(store_);
    states_ = std::make_unique<LayerStateStore>(store_.num_state_slots());
    ctx_.view = ParameterView{store_.params(), store_.grads(),
                              store_.num_params()};
    ctx_.states = states_.get();
    Rng rng(init_seed);
    layer_->InitParams(&rng, ctx_.view);
  }

  ParameterStore& store() { return store_; }
  ExecContext& ctx() { return ctx_; }

  Tensor Forward(const Tensor& input) { return layer_->Forward(input, ctx_); }
  Tensor Backward(const Tensor& grad_output) {
    return layer_->Backward(grad_output, ctx_);
  }

 private:
  Layer* layer_;
  ParameterStore store_;
  std::unique_ptr<LayerStateStore> states_;
  ExecContext ctx_;
};

/// Scalar loss used for gradient checks: weighted sum of the output.
/// Fixed random weights make the check sensitive to every output element.
struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
};

/// Checks d(loss)/d(input) of a harnessed layer against central finite
/// differences.
GradCheckResult CheckInputGradient(LayerHarness* harness, const Tensor& input,
                                   uint64_t seed, double epsilon = 1e-3);

/// Checks d(loss)/d(params) of a model (all parameters at once, sampled
/// `num_probes` coordinates to keep runtime bounded).
GradCheckResult CheckParamGradient(Model* model, const Tensor& input,
                                   const std::vector<int>& labels,
                                   size_t num_probes, uint64_t seed,
                                   double epsilon = 1e-3);

}  // namespace testing
}  // namespace fedra

#endif  // FEDRA_TESTS_TEST_UTIL_H_
