// Shared test helpers: random tensor filling and finite-difference gradient
// checking for layers and models.

#ifndef FEDRA_TESTS_TEST_UTIL_H_
#define FEDRA_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>
#include <vector>

#include "nn/layer.h"
#include "nn/model.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace fedra {
namespace testing {

inline void FillUniform(Tensor* t, Rng* rng, float lo = -1.0f,
                        float hi = 1.0f) {
  for (size_t i = 0; i < t->numel(); ++i) {
    (*t)[i] = rng->NextUniform(lo, hi);
  }
}

inline void FillUniform(float* data, size_t n, Rng* rng, float lo = -1.0f,
                        float hi = 1.0f) {
  for (size_t i = 0; i < n; ++i) {
    data[i] = rng->NextUniform(lo, hi);
  }
}

/// Scalar loss used for gradient checks: weighted sum of the output.
/// Fixed random weights make the check sensitive to every output element.
struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
};

/// Checks d(loss)/d(input) of a layer against central finite differences.
/// The layer must be bound to `store` if it has parameters.
GradCheckResult CheckInputGradient(Layer* layer, const Tensor& input,
                                   uint64_t seed, double epsilon = 1e-3);

/// Checks d(loss)/d(params) of a model (all parameters at once, sampled
/// `num_probes` coordinates to keep runtime bounded).
GradCheckResult CheckParamGradient(Model* model, const Tensor& input,
                                   const std::vector<int>& labels,
                                   size_t num_probes, uint64_t seed,
                                   double epsilon = 1e-3);

}  // namespace testing
}  // namespace fedra

#endif  // FEDRA_TESTS_TEST_UTIL_H_
