// Tests for the data substrate: synthetic generators, heterogeneity
// partitioners (property-tested across kinds and worker counts), batch
// sampling, and the transfer-learning scenario.

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/batching.h"
#include "data/partition.h"
#include "data/synth.h"
#include "data/transfer.h"

namespace fedra {
namespace {

// ------------------------------------------------------------------ synth

TEST(SynthTest, ConfigValidation) {
  SynthImageConfig config = MnistLikeConfig();
  EXPECT_TRUE(config.Validate().ok());
  config.num_classes = 1;
  EXPECT_FALSE(config.Validate().ok());
  config = MnistLikeConfig();
  config.image_size = 4;
  EXPECT_FALSE(config.Validate().ok());
  config = MnistLikeConfig();
  config.label_noise = 1.0f;
  EXPECT_FALSE(config.Validate().ok());
  config = MnistLikeConfig();
  config.num_train = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = MnistLikeConfig();
  config.max_shift = config.image_size;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(SynthTest, GeneratesRequestedShapes) {
  SynthImageConfig config = MnistLikeConfig();
  config.num_train = 256;
  config.num_test = 64;
  auto data = GenerateSynthImages(config);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->train.size(), 256u);
  EXPECT_EQ(data->test.size(), 64u);
  EXPECT_EQ(data->train.channels(), 1);
  EXPECT_EQ(data->train.height(), 16);
  EXPECT_EQ(data->train.num_classes(), 10);
}

TEST(SynthTest, DeterministicInSeed) {
  SynthImageConfig config = MnistLikeConfig();
  config.num_train = 64;
  config.num_test = 16;
  auto a = GenerateSynthImages(config);
  auto b = GenerateSynthImages(config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->train.labels(), b->train.labels());
  for (size_t i = 0; i < a->train.images().numel(); ++i) {
    ASSERT_EQ(a->train.images()[i], b->train.images()[i]);
  }
}

TEST(SynthTest, DifferentSeedsDiffer) {
  SynthImageConfig config = MnistLikeConfig();
  config.num_train = 64;
  config.num_test = 16;
  auto a = GenerateSynthImages(config);
  config.seed ^= 0x1234;
  auto b = GenerateSynthImages(config);
  ASSERT_TRUE(a.ok() && b.ok());
  size_t differing = 0;
  for (size_t i = 0; i < a->train.images().numel(); ++i) {
    differing += a->train.images()[i] != b->train.images()[i];
  }
  EXPECT_GT(differing, a->train.images().numel() / 2);
}

TEST(SynthTest, ClassesRoughlyBalanced) {
  SynthImageConfig config = MnistLikeConfig();
  config.num_train = 2000;
  config.num_test = 100;
  auto data = GenerateSynthImages(config);
  ASSERT_TRUE(data.ok());
  auto histogram = data->train.ClassHistogram();
  ASSERT_EQ(histogram.size(), 10u);
  for (size_t count : histogram) {
    EXPECT_GT(count, 120u);  // expected 200 each
    EXPECT_LT(count, 300u);
  }
}

TEST(SynthTest, CifarLikeIsHarderThanMnistLike) {
  // Harder = more noise channels + label noise; verify config differences
  // that drive the difficulty gap.
  auto mnist = MnistLikeConfig();
  auto cifar = CifarLikeConfig();
  EXPECT_GT(cifar.channels, mnist.channels);
  EXPECT_GT(cifar.noise_stddev, mnist.noise_stddev);
  EXPECT_GT(cifar.label_noise, mnist.label_noise);
  EXPECT_GT(cifar.deform_stddev, mnist.deform_stddev);
}

TEST(SynthTest, SamePrototypeClassesCorrelateAcrossSamples) {
  // Two samples of one class correlate more than samples of different
  // classes (averaged over pairs) — the signal a CNN learns.
  SynthImageConfig config = MnistLikeConfig();
  config.num_train = 600;
  config.num_test = 10;
  config.noise_stddev = 0.1f;
  auto data = GenerateSynthImages(config);
  ASSERT_TRUE(data.ok());
  const auto& train = data->train;
  const size_t pixels = static_cast<size_t>(train.channels()) *
                        train.height() * train.width();
  auto correlation = [&](size_t i, size_t j) {
    const float* a = train.images().data() + i * pixels;
    const float* b = train.images().data() + j * pixels;
    double dot = 0.0;
    double na = 0.0;
    double nb = 0.0;
    for (size_t p = 0; p < pixels; ++p) {
      dot += static_cast<double>(a[p]) * b[p];
      na += static_cast<double>(a[p]) * a[p];
      nb += static_cast<double>(b[p]) * b[p];
    }
    return dot / std::sqrt(na * nb + 1e-12);
  };
  double same = 0.0;
  int same_count = 0;
  double diff = 0.0;
  int diff_count = 0;
  for (size_t i = 0; i < 120; ++i) {
    for (size_t j = i + 1; j < 120; ++j) {
      if (train.labels()[i] == train.labels()[j]) {
        same += correlation(i, j);
        ++same_count;
      } else {
        diff += correlation(i, j);
        ++diff_count;
      }
    }
  }
  ASSERT_GT(same_count, 0);
  ASSERT_GT(diff_count, 0);
  EXPECT_GT(same / same_count, diff / diff_count + 0.1);
}

// ---------------------------------------------------------------- dataset

TEST(DatasetTest, GatherExtractsRows) {
  Tensor images({3, 1, 2, 2});
  for (size_t i = 0; i < images.numel(); ++i) {
    images[i] = static_cast<float>(i);
  }
  Dataset dataset(std::move(images), {0, 1, 0});
  Tensor batch = dataset.GatherImages({2, 0});
  EXPECT_EQ(batch.dim(0), 2);
  EXPECT_FLOAT_EQ(batch[0], 8.0f);  // sample 2 starts at 2*4
  EXPECT_FLOAT_EQ(batch[4], 0.0f);  // sample 0
  auto labels = dataset.GatherLabels({2, 0});
  EXPECT_EQ(labels, (std::vector<int>{0, 0}));
}

TEST(DatasetDeathTest, MismatchedLabelsDie) {
  Tensor images({3, 1, 2, 2});
  EXPECT_DEATH(Dataset(std::move(images), {0, 1}), "FEDRA_CHECK");
}

// -------------------------------------------------------------- partition

std::vector<int> MakeLabels(size_t n, int num_classes, uint64_t seed) {
  Rng rng(seed);
  std::vector<int> labels(n);
  for (auto& label : labels) {
    label = static_cast<int>(rng.NextBounded(
        static_cast<uint64_t>(num_classes)));
  }
  return labels;
}

struct PartitionCase {
  PartitionConfig config;
  int num_workers;
};

class PartitionPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
  // (kind index, num_workers)
};

TEST_P(PartitionPropertyTest, CompleteDisjointAndBalanced) {
  const auto [kind_index, num_workers] = GetParam();
  PartitionConfig config;
  switch (kind_index) {
    case 0:
      config = PartitionConfig::Iid();
      break;
    case 1:
      config = PartitionConfig::SortedFraction(0.6);
      break;
    case 2:
      config = PartitionConfig::LabelToFew(0, 2);
      break;
  }
  const size_t n = 1200;
  auto labels = MakeLabels(n, 10, 77);
  auto parts = PartitionDataset(labels, num_workers, config);
  ASSERT_TRUE(parts.ok()) << parts.status();
  // Complete + disjoint: every index exactly once.
  std::vector<int> seen(n, 0);
  size_t total = 0;
  for (const auto& part : *parts) {
    for (size_t idx : part) {
      ASSERT_LT(idx, n);
      ++seen[idx];
    }
    total += part.size();
  }
  EXPECT_EQ(total, n);
  for (int count : seen) {
    ASSERT_EQ(count, 1);
  }
  // Approximately equal parts (paper §4.1). For Label-to-few the holder
  // workers legitimately exceed the average once the concentrated label's
  // share per holder is larger than an equal part (high K).
  const size_t expected = n / static_cast<size_t>(num_workers);
  size_t holder_surplus = 0;
  if (kind_index == 2) {
    size_t concentrated = 0;
    for (int label : labels) {
      concentrated += label == 0;
    }
    holder_surplus = concentrated / 2 + 1;  // 2 holders in this config
  }
  for (const auto& part : *parts) {
    EXPECT_GE(part.size(), expected - expected / 4 - 1);
    EXPECT_LE(part.size(), expected + expected / 4 + 1 + holder_surplus);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndWorkers, PartitionPropertyTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1, 2, 5, 10, 30)));

TEST(PartitionTest, IidSpreadsClassesEvenly) {
  auto labels = MakeLabels(2000, 10, 3);
  auto parts = PartitionDataset(labels, 4, PartitionConfig::Iid());
  ASSERT_TRUE(parts.ok());
  for (const auto& part : *parts) {
    std::vector<int> histogram(10, 0);
    for (size_t idx : part) {
      ++histogram[static_cast<size_t>(labels[idx])];
    }
    for (int count : histogram) {
      EXPECT_GT(count, 20);  // expected 50
      EXPECT_LT(count, 90);
    }
  }
}

TEST(PartitionTest, LabelToFewConcentratesLabel) {
  auto labels = MakeLabels(2000, 10, 4);
  auto parts =
      PartitionDataset(labels, 8, PartitionConfig::LabelToFew(3, 2));
  ASSERT_TRUE(parts.ok());
  // All label-3 samples must live on workers 0 and 1.
  for (size_t k = 2; k < parts->size(); ++k) {
    for (size_t idx : (*parts)[k]) {
      ASSERT_NE(labels[idx], 3) << "label 3 leaked to worker " << k;
    }
  }
  size_t held = 0;
  for (size_t k = 0; k < 2; ++k) {
    for (size_t idx : (*parts)[k]) {
      held += labels[idx] == 3;
    }
  }
  size_t total_label3 = 0;
  for (int label : labels) {
    total_label3 += label == 3;
  }
  EXPECT_EQ(held, total_label3);
}

TEST(PartitionTest, SortedFractionCreatesLabelSkew) {
  auto labels = MakeLabels(3000, 10, 5);
  auto iid = PartitionDataset(labels, 6, PartitionConfig::Iid());
  auto sorted =
      PartitionDataset(labels, 6, PartitionConfig::SortedFraction(0.8));
  ASSERT_TRUE(iid.ok() && sorted.ok());
  // Skew metric: the max per-worker class share, averaged over workers.
  auto skew = [&](const std::vector<std::vector<size_t>>& parts) {
    double total = 0.0;
    for (const auto& part : parts) {
      std::vector<int> histogram(10, 0);
      for (size_t idx : part) {
        ++histogram[static_cast<size_t>(labels[idx])];
      }
      total += static_cast<double>(
                   *std::max_element(histogram.begin(), histogram.end())) /
               static_cast<double>(part.size());
    }
    return total / static_cast<double>(parts.size());
  };
  EXPECT_GT(skew(*sorted), skew(*iid) + 0.15);
}

TEST(PartitionTest, ZeroSortedFractionEqualsIidBehaviour) {
  auto labels = MakeLabels(500, 5, 6);
  auto parts =
      PartitionDataset(labels, 5, PartitionConfig::SortedFraction(0.0));
  ASSERT_TRUE(parts.ok());
  size_t total = 0;
  for (const auto& part : *parts) {
    total += part.size();
  }
  EXPECT_EQ(total, 500u);
}

TEST(PartitionTest, ErrorsOnBadInput) {
  auto labels = MakeLabels(10, 2, 7);
  EXPECT_FALSE(PartitionDataset(labels, 0, PartitionConfig::Iid()).ok());
  EXPECT_FALSE(PartitionDataset(labels, 11, PartitionConfig::Iid()).ok());
  PartitionConfig bad = PartitionConfig::SortedFraction(1.5);
  EXPECT_FALSE(PartitionDataset(labels, 2, bad).ok());
  PartitionConfig bad_label = PartitionConfig::LabelToFew(-1);
  EXPECT_FALSE(PartitionDataset(labels, 2, bad_label).ok());
}

TEST(PartitionTest, ConfigToStringMatchesPaperNaming) {
  EXPECT_EQ(PartitionConfig::Iid().ToString(), "IID");
  EXPECT_EQ(PartitionConfig::SortedFraction(0.6).ToString(), "Non-IID: 60%");
  EXPECT_EQ(PartitionConfig::LabelToFew(0).ToString(),
            "Non-IID: Label \"0\"");
}

// --------------------------------------------------------------- batching

TEST(BatchSamplerTest, CoversEveryIndexEachEpoch) {
  std::vector<size_t> indices = {10, 11, 12, 13, 14, 15, 16};
  BatchSampler sampler(indices, 3, Rng(1));
  for (int epoch = 0; epoch < 3; ++epoch) {
    std::multiset<size_t> seen;
    // 7 samples with batch 3 => batches of 3, 3, 1.
    for (int b = 0; b < 3; ++b) {
      for (size_t idx : sampler.NextBatch()) {
        seen.insert(idx);
      }
    }
    EXPECT_EQ(seen.size(), 7u);
    for (size_t idx : indices) {
      EXPECT_EQ(seen.count(idx), 1u) << "epoch " << epoch;
    }
  }
  EXPECT_EQ(sampler.epochs_completed(), 2u);  // reshuffled twice so far
  EXPECT_EQ(sampler.steps(), 9u);
}

TEST(BatchSamplerTest, BatchSizesRespectBound) {
  BatchSampler sampler({1, 2, 3, 4, 5}, 2, Rng(2));
  EXPECT_EQ(sampler.steps_per_epoch(), 3u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_LE(sampler.NextBatch().size(), 2u);
  }
}

TEST(BatchSamplerTest, DeterministicForSameRng) {
  std::vector<size_t> indices = {0, 1, 2, 3, 4, 5, 6, 7};
  BatchSampler a(indices, 3, Rng(9));
  BatchSampler b(indices, 3, Rng(9));
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(a.NextBatch(), b.NextBatch());
  }
}

TEST(BatchSamplerDeathTest, EmptyIndicesDie) {
  EXPECT_DEATH(BatchSampler({}, 4, Rng(1)), "at least one");
}

// ---------------------------------------------------------------- transfer

TEST(TransferTest, DefaultConfigValidates) {
  EXPECT_TRUE(TransferConfig::Default().Validate().ok());
}

TEST(TransferTest, GeometryMismatchRejected) {
  TransferConfig config = TransferConfig::Default();
  config.target.image_size = 32;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(TransferTest, ScenarioProducesBothTasks) {
  TransferConfig config = TransferConfig::Default();
  config.source.num_train = 128;
  config.source.num_test = 32;
  config.target.num_train = 128;
  config.target.num_test = 32;
  auto scenario = MakeTransferScenario(config);
  ASSERT_TRUE(scenario.ok()) << scenario.status();
  EXPECT_EQ(scenario->source.train.size(), 128u);
  EXPECT_EQ(scenario->target.train.size(), 128u);
  EXPECT_EQ(scenario->source.train.channels(),
            scenario->target.train.channels());
}

TEST(TransferTest, FullRelatednessReproducesSourceGeometry) {
  // relatedness=1 blends away all fresh structure: the target's class
  // signal comes entirely from the source prototypes.
  SynthImageConfig config = CifarLikeConfig();
  config.num_train = 64;
  config.num_test = 16;
  config.noise_stddev = 0.0f;
  config.max_shift = 0;
  config.deform_stddev = 0.0f;
  config.label_noise = 0.0f;
  auto base = GenerateSynthImages(config);
  SynthImageConfig blend_config = config;
  blend_config.seed = 999;  // fresh prototypes differ, but weight is 0
  auto blended =
      GenerateBlendedSynthImages(blend_config, config.seed, 1.0f);
  ASSERT_TRUE(base.ok() && blended.ok());
  // Same class prototypes + same render stream seed => need only check that
  // the *per-class mean images* coincide, which is seed-layout independent.
  auto class_mean = [](const Dataset& dataset, int cls) {
    const size_t pixels = static_cast<size_t>(dataset.channels()) *
                          dataset.height() * dataset.width();
    std::vector<double> mean(pixels, 0.0);
    size_t count = 0;
    for (size_t i = 0; i < dataset.size(); ++i) {
      if (dataset.labels()[i] != cls) {
        continue;
      }
      for (size_t p = 0; p < pixels; ++p) {
        mean[p] += dataset.images()[i * pixels + p];
      }
      ++count;
    }
    for (auto& m : mean) {
      m /= std::max<size_t>(count, 1);
    }
    return mean;
  };
  // Compare class-0 mean images; with zero noise/shift they derive from the
  // same prototypes, so they should be highly correlated.
  auto a = class_mean(base->train, 0);
  auto b = class_mean(blended->train, 0);
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t p = 0; p < a.size(); ++p) {
    dot += a[p] * b[p];
    na += a[p] * a[p];
    nb += b[p] * b[p];
  }
  EXPECT_GT(dot / std::sqrt(na * nb + 1e-12), 0.97);
}

TEST(TransferTest, ZeroRelatednessProducesUnrelatedTask) {
  SynthImageConfig config = CifarLikeConfig();
  config.num_train = 64;
  config.num_test = 16;
  config.noise_stddev = 0.0f;
  config.max_shift = 0;
  config.deform_stddev = 0.0f;
  config.label_noise = 0.0f;
  auto base = GenerateSynthImages(config);
  SynthImageConfig blend_config = config;
  blend_config.seed = 999;
  auto blended =
      GenerateBlendedSynthImages(blend_config, config.seed, 0.0f);
  ASSERT_TRUE(base.ok() && blended.ok());
  // Class-0 mean images should now be weakly correlated.
  const size_t pixels = static_cast<size_t>(base->train.channels()) *
                        base->train.height() * base->train.width();
  std::vector<double> a(pixels, 0.0);
  std::vector<double> b(pixels, 0.0);
  size_t ca = 0;
  size_t cb = 0;
  for (size_t i = 0; i < base->train.size(); ++i) {
    if (base->train.labels()[i] == 0) {
      for (size_t p = 0; p < pixels; ++p) {
        a[p] += base->train.images()[i * pixels + p];
      }
      ++ca;
    }
    if (blended->train.labels()[i] == 0) {
      for (size_t p = 0; p < pixels; ++p) {
        b[p] += blended->train.images()[i * pixels + p];
      }
      ++cb;
    }
  }
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t p = 0; p < pixels; ++p) {
    dot += a[p] * b[p];
    na += a[p] * a[p];
    nb += b[p] * b[p];
  }
  EXPECT_LT(std::fabs(dot / std::sqrt(na * nb + 1e-12)), 0.8);
}

}  // namespace
}  // namespace fedra
