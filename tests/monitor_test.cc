// Variance-monitor tests: the paper's central mathematical claims.
//
//  - Eq. (4) identity: Var(w) == mean ||u_k||^2 - ||u_bar||^2, verified by
//    the Exact monitor against the definition Eq. (2).
//  - Theorem 3.2: LinearFDA's H over-estimates the variance ALWAYS.
//  - Theorem 3.1: SketchFDA's H over-estimates with confidence ~(1-delta).
//  - LinearFDA's heuristic xi update from the last two synchronized models.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/variance_monitor.h"
#include "tensor/vec_ops.h"
#include "util/rng.h"

namespace fedra {
namespace {

/// Var(w) by the definition Eq. (2): (1/K) sum ||w_k - w_bar||^2.
double VarianceByDefinition(const std::vector<std::vector<float>>& models) {
  const size_t dim = models[0].size();
  std::vector<double> mean(dim, 0.0);
  for (const auto& w : models) {
    for (size_t i = 0; i < dim; ++i) {
      mean[i] += w[i];
    }
  }
  for (auto& m : mean) {
    m /= static_cast<double>(models.size());
  }
  double var = 0.0;
  for (const auto& w : models) {
    for (size_t i = 0; i < dim; ++i) {
      const double diff = w[i] - mean[i];
      var += diff * diff;
    }
  }
  return var / static_cast<double>(models.size());
}

struct Cohort {
  std::vector<std::vector<float>> models;  // w_k
  std::vector<float> sync_point;           // w_t0
  std::vector<std::vector<float>> drifts;  // u_k = w_k - w_t0
};

Cohort MakeCohort(int num_workers, size_t dim, double drift_scale,
                  uint64_t seed) {
  Rng rng(seed);
  Cohort cohort;
  cohort.sync_point.resize(dim);
  for (auto& x : cohort.sync_point) {
    x = rng.NextGaussian(0.0f, 1.0f);
  }
  // A shared direction plus per-worker noise mimics real training drifts.
  std::vector<float> shared(dim);
  for (auto& x : shared) {
    x = rng.NextGaussian(0.0f, 1.0f);
  }
  for (int k = 0; k < num_workers; ++k) {
    std::vector<float> w = cohort.sync_point;
    std::vector<float> u(dim);
    for (size_t i = 0; i < dim; ++i) {
      u[i] = static_cast<float>(
          drift_scale * (0.6 * shared[i] + rng.NextGaussian(0.0f, 0.8f)));
      w[i] += u[i];
    }
    cohort.models.push_back(std::move(w));
    cohort.drifts.push_back(std::move(u));
  }
  return cohort;
}

/// Runs a monitor over a cohort: compute per-worker states, average them
/// (what AllReduce produces), return H(S_bar).
double MonitorEstimate(VarianceMonitor* monitor, const Cohort& cohort) {
  const size_t state_size = monitor->StateSize();
  std::vector<float> avg_state(state_size, 0.0f);
  std::vector<float> state(state_size);
  const float inv_k = 1.0f / static_cast<float>(cohort.drifts.size());
  for (const auto& drift : cohort.drifts) {
    monitor->ComputeLocalState(drift.data(), state.data());
    vec::Axpy(inv_k, state.data(), avg_state.data(), state_size);
  }
  return monitor->EstimateVariance(avg_state.data());
}

// -------------------------------------------------------------- ExactFDA

class ExactMonitorIdentityTest
    : public ::testing::TestWithParam<std::tuple<int, size_t, double>> {};

TEST_P(ExactMonitorIdentityTest, MatchesDefinitionEquation4) {
  const auto [num_workers, dim, scale] = GetParam();
  Cohort cohort = MakeCohort(num_workers, dim, scale,
                             17 * static_cast<uint64_t>(num_workers) + dim);
  ExactVarianceMonitor monitor(dim);
  const double by_identity = MonitorEstimate(&monitor, cohort);
  const double by_definition = VarianceByDefinition(cohort.models);
  // float32 states + double math: allow small relative error.
  EXPECT_NEAR(by_identity, by_definition,
              1e-3 * std::max(1.0, by_definition));
}

INSTANTIATE_TEST_SUITE_P(
    WorkersDimsScales, ExactMonitorIdentityTest,
    ::testing::Combine(::testing::Values(2, 5, 16),
                       ::testing::Values<size_t>(16, 257, 2048),
                       ::testing::Values(0.1, 1.0, 10.0)));

TEST(ExactMonitorTest, ZeroDriftsGiveZeroVariance) {
  const size_t dim = 64;
  ExactVarianceMonitor monitor(dim);
  Cohort cohort = MakeCohort(4, dim, 0.0, 3);
  EXPECT_NEAR(MonitorEstimate(&monitor, cohort), 0.0, 1e-9);
}

TEST(ExactMonitorTest, StateSizeIsDimPlusOne) {
  ExactVarianceMonitor monitor(100);
  EXPECT_EQ(monitor.StateSize(), 101u);
}

TEST(ExactMonitorTest, IdenticalDriftsGiveZeroVariance) {
  // If every worker moves identically, models agree: variance is 0 even
  // though drifts are large.
  const size_t dim = 128;
  Rng rng(5);
  std::vector<float> drift(dim);
  for (auto& x : drift) {
    x = rng.NextGaussian(0.0f, 3.0f);
  }
  Cohort cohort;
  for (int k = 0; k < 6; ++k) {
    cohort.drifts.push_back(drift);
  }
  ExactVarianceMonitor monitor(dim);
  EXPECT_NEAR(MonitorEstimate(&monitor, cohort), 0.0, 1e-4);
}

// -------------------------------------------------------------- LinearFDA

class LinearOverestimateTest
    : public ::testing::TestWithParam<std::tuple<int, size_t>> {};

TEST_P(LinearOverestimateTest, AlwaysOverestimates) {
  const auto [num_workers, dim] = GetParam();
  for (uint64_t trial = 0; trial < 20; ++trial) {
    Cohort cohort = MakeCohort(num_workers, dim, 1.0, 100 + trial);
    LinearVarianceMonitor monitor(dim);
    // Try both the zero-xi (pre-sync) monitor and one with a random unit xi
    // installed through the public OnSynchronized path.
    const double h_zero_xi = MonitorEstimate(&monitor, cohort);
    const double truth = VarianceByDefinition(cohort.models);
    EXPECT_GE(h_zero_xi, truth - 1e-3 * std::max(1.0, truth))
        << "Thm 3.2 violated (zero xi), trial " << trial;

    // Install xi = normalize(w_new - w_prev) for random w's.
    Rng rng(200 + trial);
    std::vector<float> w_new(dim);
    std::vector<float> w_prev(dim);
    for (size_t i = 0; i < dim; ++i) {
      w_new[i] = rng.NextGaussian(0.0f, 1.0f);
      w_prev[i] = rng.NextGaussian(0.0f, 1.0f);
    }
    monitor.OnSynchronized(w_new.data(), w_prev.data());
    const double h_xi = MonitorEstimate(&monitor, cohort);
    EXPECT_GE(h_xi, truth - 1e-3 * std::max(1.0, truth))
        << "Thm 3.2 violated (heuristic xi), trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorkersAndDims, LinearOverestimateTest,
    ::testing::Combine(::testing::Values(2, 8, 32),
                       ::testing::Values<size_t>(8, 128, 1024)));

TEST(LinearMonitorTest, StateSizeIsTwo) {
  LinearVarianceMonitor monitor(1000);
  EXPECT_EQ(monitor.StateSize(), 2u);
}

TEST(LinearMonitorTest, XiBecomesUnitVectorAfterSync) {
  const size_t dim = 64;
  LinearVarianceMonitor monitor(dim);
  Rng rng(7);
  std::vector<float> w_new(dim);
  std::vector<float> w_prev(dim);
  for (size_t i = 0; i < dim; ++i) {
    w_new[i] = rng.NextGaussian(0.0f, 1.0f);
    w_prev[i] = rng.NextGaussian(0.0f, 1.0f);
  }
  monitor.OnSynchronized(w_new.data(), w_prev.data());
  EXPECT_NEAR(vec::Norm(monitor.xi().data(), dim), 1.0, 1e-5);
  // xi is parallel to w_new - w_prev.
  std::vector<float> diff(dim);
  vec::Sub(w_new.data(), w_prev.data(), diff.data(), dim);
  const double cos = vec::Dot(monitor.xi().data(), diff.data(), dim) /
                     vec::Norm(diff.data(), dim);
  EXPECT_NEAR(cos, 1.0, 1e-5);
}

TEST(LinearMonitorTest, IdenticalSyncsResetXiToZero) {
  const size_t dim = 16;
  LinearVarianceMonitor monitor(dim);
  std::vector<float> w(dim, 1.0f);
  monitor.OnSynchronized(w.data(), w.data());
  EXPECT_NEAR(vec::Norm(monitor.xi().data(), dim), 0.0, 1e-9);
}

TEST(LinearMonitorTest, PerfectXiGivesExactEstimate) {
  // When all drifts are parallel to xi, |<xi, u_bar>|^2 == ||u_bar||^2 and
  // the estimate is exact (no over-estimation slack).
  const size_t dim = 32;
  Rng rng(8);
  std::vector<float> direction(dim);
  for (auto& x : direction) {
    x = rng.NextGaussian(0.0f, 1.0f);
  }
  const double norm = vec::Norm(direction.data(), dim);
  for (auto& x : direction) {
    x = static_cast<float>(x / norm);
  }
  Cohort cohort;
  std::vector<double> alphas = {0.5, 1.5, -0.7, 2.0};
  for (double alpha : alphas) {
    std::vector<float> u(dim);
    for (size_t i = 0; i < dim; ++i) {
      u[i] = static_cast<float>(alpha * direction[i]);
    }
    cohort.drifts.push_back(std::move(u));
  }
  LinearVarianceMonitor monitor(dim);
  // Install xi = direction via OnSynchronized(prev + direction, prev).
  std::vector<float> w_prev(dim, 0.0f);
  monitor.OnSynchronized(direction.data(), w_prev.data());
  // True variance of the alpha-scaled points along a unit direction:
  // mean(alpha^2) - mean(alpha)^2.
  double mean_a = 0.0;
  double mean_a2 = 0.0;
  for (double a : alphas) {
    mean_a += a / alphas.size();
    mean_a2 += a * a / alphas.size();
  }
  const double truth = mean_a2 - mean_a * mean_a;
  EXPECT_NEAR(MonitorEstimate(&monitor, cohort), truth, 1e-4);
}

// -------------------------------------------------------------- SketchFDA

TEST(SketchMonitorTest, StateSizeMatchesSketch) {
  SketchVarianceMonitor monitor(5000, 5, 250, 1);
  EXPECT_EQ(monitor.StateSize(), 1u + 5u * 250u);
}

TEST(SketchMonitorTest, OverestimatesWithHighConfidence) {
  // Thm 3.1: H >= Var with probability >= 1 - delta. Count violations over
  // independent hash families.
  const size_t dim = 1024;
  const int trials = 40;
  int violations = 0;
  for (int t = 0; t < trials; ++t) {
    Cohort cohort = MakeCohort(6, dim, 1.0, 300 + static_cast<uint64_t>(t));
    SketchVarianceMonitor monitor(dim, 5, 250,
                                  900 + static_cast<uint64_t>(t));
    const double h = MonitorEstimate(&monitor, cohort);
    const double truth = VarianceByDefinition(cohort.models);
    if (h < truth * (1.0 - 1e-6)) {
      ++violations;
    }
  }
  // delta ~ 5%; allow up to 15% of trials to be unlucky.
  EXPECT_LE(violations, 6);
}

TEST(SketchMonitorTest, EstimateIsCloseToTruth) {
  // Beyond over-estimation, the estimate should be *tight* — within a few
  // eps of the truth — which is what makes SketchFDA sync rarely.
  const size_t dim = 4096;
  Cohort cohort = MakeCohort(8, dim, 1.0, 4242);
  SketchVarianceMonitor monitor(dim, 5, 250, 31337);
  const double h = MonitorEstimate(&monitor, cohort);
  const double truth = VarianceByDefinition(cohort.models);
  EXPECT_LT(std::fabs(h - truth), 0.35 * truth);
}

TEST(SketchMonitorTest, TighterThanLinearOnAverage) {
  // The paper: SketchFDA's estimator is provably accurate and expected to
  // trigger fewer syncs; Linear overestimates by more. Compare average
  // over-estimation slack on shared-direction drifts where xi is stale.
  const size_t dim = 2048;
  double sketch_slack = 0.0;
  double linear_slack = 0.0;
  const int trials = 12;
  for (int t = 0; t < trials; ++t) {
    Cohort cohort = MakeCohort(6, dim, 1.0, 500 + static_cast<uint64_t>(t));
    const double truth = VarianceByDefinition(cohort.models);
    SketchVarianceMonitor sketch(dim, 5, 250,
                                 1000 + static_cast<uint64_t>(t));
    LinearVarianceMonitor linear(dim);  // zero xi: maximally conservative
    sketch_slack += MonitorEstimate(&sketch, cohort) - truth;
    linear_slack += MonitorEstimate(&linear, cohort) - truth;
  }
  EXPECT_LT(sketch_slack, linear_slack);
}

// ---------------------------------------------------------------- factory

TEST(MonitorFactoryTest, BuildsAllKinds) {
  for (MonitorKind kind :
       {MonitorKind::kExact, MonitorKind::kSketch, MonitorKind::kLinear}) {
    MonitorConfig config;
    config.kind = kind;
    auto monitor = MakeVarianceMonitor(config, 256);
    ASSERT_TRUE(monitor.ok());
    EXPECT_EQ((*monitor)->dim(), 256u);
  }
}

TEST(MonitorFactoryTest, RejectsBadConfigs) {
  MonitorConfig config;
  config.kind = MonitorKind::kSketch;
  config.sketch_rows = 0;
  EXPECT_FALSE(MakeVarianceMonitor(config, 10).ok());
  MonitorConfig ok_config;
  EXPECT_FALSE(MakeVarianceMonitor(ok_config, 0).ok());
}

TEST(MonitorTest, NamesMatchPaper) {
  EXPECT_EQ(ExactVarianceMonitor(8).name(), "ExactFDA");
  EXPECT_EQ(SketchVarianceMonitor(8, 2, 4, 1).name(), "SketchFDA");
  EXPECT_EQ(LinearVarianceMonitor(8).name(), "LinearFDA");
}

}  // namespace
}  // namespace fedra
