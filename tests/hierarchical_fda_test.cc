// Escalation-accounting regression tests for HierarchicalFdaPolicy.
//
// The scheduler's contract is that tiers are billed only when they are
// used: when the cheap cluster-local condition trips every round but the
// escalation threshold is never crossed, the uplink (root tier) must carry
// exactly zero seconds and zero bytes — and vice versa, when every round
// escalates straight to a global synchronization, no cluster-local model
// average may be billed. Plus counter-consistency and determinism checks
// of the scheduler itself.

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "core/fda_policy.h"
#include "data/synth.h"
#include "nn/zoo.h"
#include "sim/topology_tree.h"

namespace fedra {
namespace {

SynthImageData SmallMnistLike() {
  SynthImageConfig config = MnistLikeConfig();
  config.num_train = 512;
  config.num_test = 256;
  config.image_size = 16;
  auto data = GenerateSynthImages(config);
  FEDRA_CHECK(data.ok());
  return std::move(data).value();
}

ModelFactory SmallMlpFactory() {
  return [] { return zoo::Mlp(16 * 16, {24}, 10); };
}

TrainerConfig TreeConfig(int num_workers, TopologyTree topology) {
  TrainerConfig config;
  config.num_workers = num_workers;
  config.batch_size = 16;
  config.local_optimizer = OptimizerConfig::Adam(0.002f);
  config.seed = 23;
  config.max_steps = 40;
  config.eval_every_steps = 20;
  config.eval_subset = 128;
  config.topology = std::move(topology);
  return config;
}

std::unique_ptr<HierarchicalFdaPolicy> MakePolicy(
    std::vector<double> theta_by_depth, size_t dim) {
  HierarchicalFdaConfig config;
  config.monitor.kind = MonitorKind::kLinear;
  config.theta_by_depth = std::move(theta_by_depth);
  auto policy = MakeHierarchicalFdaPolicy(config, dim);
  FEDRA_CHECK(policy.ok()) << policy.status();
  return std::move(policy).value();
}

// Cluster-local condition trips every round (theta_leaf = 0), the global
// one never does (theta_root astronomically high): the uplink must bill
// exactly zero seconds and zero bytes while the cheap tier does all the
// drift control.
TEST(HierarchicalFdaTest, LocalOnlyTripsBillZeroUplink) {
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = TreeConfig(
      4, TopologyTree::FromHierarchy(HierarchicalNetworkModel::EdgeCloud(2)));
  DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                             config);
  auto policy = MakePolicy({1e18, 0.0}, trainer.model_dim());
  auto result = trainer.Run(policy.get());
  ASSERT_TRUE(result.ok()) << result.status();

  // Both clusters average locally on every step...
  EXPECT_EQ(policy->local_sync_count(), 2ull * config.max_steps);
  EXPECT_EQ(result->comm.subtree_sync_count, 2ull * config.max_steps);
  // ...and nothing ever escalates or synchronizes globally.
  EXPECT_EQ(policy->global_sync_count(), 0u);
  EXPECT_EQ(policy->escalation_count(), 0u);
  EXPECT_EQ(result->total_syncs, 0u);
  EXPECT_EQ(result->comm.model_sync_count, 0u);
  EXPECT_EQ(result->comm.child_exchange_calls, 0u);
  // The contract: the uplink tier carries zero seconds and zero bytes.
  EXPECT_DOUBLE_EQ(result->comm.seconds_uplink, 0.0);
  EXPECT_DOUBLE_EQ(result->comm.SecondsAtDepth(0), 0.0);
  EXPECT_EQ(result->comm.BytesAtDepth(0), 0u);
  // The cheap tier is where everything happened.
  EXPECT_GT(result->comm.seconds_intra, 0.0);
  EXPECT_GT(result->comm.BytesAtDepth(1), 0u);
  EXPECT_DOUBLE_EQ(result->comm.seconds_intra, result->comm.comm_seconds);
}

// Vice versa: the escalation threshold trips every round (theta_root = 0)
// while the cluster-local condition never does (theta_leaf astronomically
// high): every step pays the uplink for a global synchronization and not
// one cluster-local model average is billed.
TEST(HierarchicalFdaTest, GlobalOnlyTripsBillNoLocalModelSyncs) {
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = TreeConfig(
      4, TopologyTree::FromHierarchy(HierarchicalNetworkModel::EdgeCloud(2)));
  DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                             config);
  auto policy = MakePolicy({0.0, 1e18}, trainer.model_dim());
  auto result = trainer.Run(policy.get());
  ASSERT_TRUE(result.ok()) << result.status();

  // Every step escalates (one root child-exchange) and syncs globally.
  EXPECT_EQ(policy->global_sync_count(),
            static_cast<uint64_t>(config.max_steps));
  EXPECT_EQ(policy->escalation_count(),
            static_cast<uint64_t>(config.max_steps));
  EXPECT_EQ(result->comm.child_exchange_calls,
            static_cast<uint64_t>(config.max_steps));
  EXPECT_EQ(result->total_syncs, static_cast<uint64_t>(config.max_steps));
  EXPECT_EQ(result->comm.model_sync_count,
            static_cast<uint64_t>(config.max_steps));
  // No cluster-local model averaging was ever billed.
  EXPECT_EQ(policy->local_sync_count(), 0u);
  EXPECT_EQ(result->comm.subtree_sync_count, 0u);
  // The uplink carried the global syncs and the escalation states.
  EXPECT_GT(result->comm.seconds_uplink, 0.0);
  EXPECT_GT(result->comm.BytesAtDepth(0), 0u);
}

// Middle ground on a 3-tier tree: cheap-tier averaging happens often, the
// uplink only on escalated rounds, and the trainer's sync counter sees
// exactly the global syncs.
TEST(HierarchicalFdaTest, ThreeTierCountersAreConsistent) {
  SynthImageData data = SmallMnistLike();
  TrainerConfig config = TreeConfig(8, TopologyTree::DeviceSiteCloud(2, 2));
  config.max_steps = 60;
  DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                             config);
  auto policy = MakePolicy({1.2, 0.5, 0.2}, trainer.model_dim());
  auto result = trainer.Run(policy.get());
  ASSERT_TRUE(result.ok()) << result.status();

  // The trainer's model_sync_count counts global syncs only; subtree
  // averages are tracked separately.
  EXPECT_EQ(result->comm.model_sync_count, policy->global_sync_count());
  EXPECT_EQ(result->total_syncs, policy->global_sync_count());
  EXPECT_EQ(result->comm.subtree_sync_count, policy->local_sync_count());
  // With an increasing threshold ladder the cheap tier trips first.
  EXPECT_GT(policy->local_sync_count(), 0u);
  EXPECT_GT(policy->global_sync_count(), 0u);
  EXPECT_GE(policy->escalation_count(), policy->global_sync_count());
  // Per-depth seconds cover all three tiers and sum to the total.
  EXPECT_GT(result->comm.SecondsAtDepth(1), 0.0);
  EXPECT_GT(result->comm.SecondsAtDepth(2), 0.0);
  EXPECT_NEAR(result->comm.SecondsAtDepth(0) +
                  result->comm.SecondsAtDepth(1) +
                  result->comm.SecondsAtDepth(2),
              result->comm.comm_seconds,
              1e-12 * std::max(1.0, result->comm.comm_seconds));
  // Training still converges sanely under local averaging.
  EXPECT_GT(result->final_test_accuracy, 0.3);
}

// The scheduler is deterministic: two identical runs produce bit-identical
// histories and counters.
TEST(HierarchicalFdaTest, RunsAreDeterministic) {
  SynthImageData data = SmallMnistLike();
  auto run = [&] {
    TrainerConfig config =
        TreeConfig(8, TopologyTree::DeviceSiteCloud(2, 2));
    config.max_steps = 30;
    config.eval_every_steps = 10;
    DistributedTrainer trainer(SmallMlpFactory(), data.train, data.test,
                               config);
    auto policy = MakePolicy({1.2, 0.5, 0.2}, trainer.model_dim());
    auto result = trainer.Run(policy.get());
    FEDRA_CHECK(result.ok());
    struct Summary {
      std::vector<EvalPoint> history;
      uint64_t local_syncs;
      uint64_t global_syncs;
      uint64_t escalations;
    };
    return Summary{result->history, policy->local_sync_count(),
                   policy->global_sync_count(), policy->escalation_count()};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.local_syncs, b.local_syncs);
  EXPECT_EQ(a.global_syncs, b.global_syncs);
  EXPECT_EQ(a.escalations, b.escalations);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].test_accuracy, b.history[i].test_accuracy);
    EXPECT_EQ(a.history[i].bytes, b.history[i].bytes);
    EXPECT_EQ(a.history[i].sim_seconds, b.history[i].sim_seconds);
  }
}

TEST(HierarchicalFdaTest, ConfigValidation) {
  HierarchicalFdaConfig config;
  config.theta_by_depth = {};
  EXPECT_FALSE(MakeHierarchicalFdaPolicy(config, 100).ok());
  config.theta_by_depth = {1.0, -0.5};
  EXPECT_FALSE(MakeHierarchicalFdaPolicy(config, 100).ok());
  config.theta_by_depth = {1.0, 0.5};
  EXPECT_TRUE(MakeHierarchicalFdaPolicy(config, 100).ok());
  // Trainer-side: topology and hierarchy are mutually exclusive.
  TrainerConfig trainer_config;
  trainer_config.topology = TopologyTree::DeviceSiteCloud(2, 2);
  trainer_config.hierarchy = HierarchicalNetworkModel::EdgeCloud(2);
  EXPECT_FALSE(trainer_config.Validate().ok());
  trainer_config.hierarchy = HierarchicalNetworkModel::None();
  EXPECT_TRUE(trainer_config.Validate().ok());
}

}  // namespace
}  // namespace fedra
