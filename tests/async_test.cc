// Tests for asynchronous FDA (paper §3.3): it trains, it synchronizes on
// variance, and under heavy stragglers it makes faster simulated-time
// progress than BSP-style FDA because fast workers never wait.

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "core/async_fda.h"
#include "data/synth.h"
#include "nn/zoo.h"

namespace fedra {
namespace {

SynthImageData SmallData() {
  SynthImageConfig config = MnistLikeConfig();
  config.num_train = 384;
  config.num_test = 128;
  auto data = GenerateSynthImages(config);
  FEDRA_CHECK(data.ok());
  return std::move(data).value();
}

ModelFactory MlpFactory() {
  return [] { return zoo::Mlp(16 * 16, {16}, 10); };
}

TrainerConfig BaseConfig() {
  TrainerConfig config;
  config.num_workers = 4;
  config.batch_size = 16;
  config.local_optimizer = OptimizerConfig::Adam(0.002f);
  config.seed = 21;
  config.max_steps = 200;
  config.eval_subset = 128;
  config.straggler = StragglerModel::None(0.01);
  return config;
}

TEST(AsyncFdaTest, RunsAndSynchronizes) {
  SynthImageData data = SmallData();
  AsyncFdaConfig async;
  async.theta = 0.02;
  async.monitor.kind = MonitorKind::kLinear;
  async.max_total_worker_steps = 400;
  AsyncFdaTrainer trainer(MlpFactory(), data.train, data.test, BaseConfig(),
                          async);
  auto result = trainer.Run();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->total_worker_steps, 400u);
  EXPECT_GT(result->sync_count, 0u);
  EXPECT_GT(result->sim_wall_seconds, 0.0);
  EXPECT_GT(result->base.comm.bytes_local_state, 0u);
}

TEST(AsyncFdaTest, HistoryCarriesEpochAndTrainAccuracy) {
  // Regression: async history rows used to carry epoch=0 and no train
  // accuracy, making async CSV/plots incomparable with the sync trainer's.
  SynthImageData data = SmallData();
  AsyncFdaConfig async;
  async.theta = 0.05;
  async.monitor.kind = MonitorKind::kLinear;
  async.max_total_worker_steps = 400;
  AsyncFdaTrainer trainer(MlpFactory(), data.train, data.test, BaseConfig(),
                          async);
  auto result = trainer.Run();
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->base.history.empty());
  double prev_epoch = 0.0;
  for (const EvalPoint& point : result->base.history) {
    EXPECT_GT(point.epoch, prev_epoch);
    prev_epoch = point.epoch;
    // 384 train samples / 4 workers / batch 16 = 6 steps per local epoch.
    EXPECT_DOUBLE_EQ(point.epoch, static_cast<double>(point.step) / 6.0);
    EXPECT_GT(point.train_accuracy, 0.02);  // recorded, not default zero
  }
}

TEST(AsyncFdaTest, HugeThetaMeansNoSyncs) {
  SynthImageData data = SmallData();
  AsyncFdaConfig async;
  async.theta = 1e12;
  async.monitor.kind = MonitorKind::kLinear;
  async.max_total_worker_steps = 200;
  AsyncFdaTrainer trainer(MlpFactory(), data.train, data.test, BaseConfig(),
                          async);
  auto result = trainer.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sync_count, 0u);
  EXPECT_EQ(result->base.comm.bytes_model_sync, 0u);
}

TEST(AsyncFdaTest, DeterministicAcrossRuns) {
  SynthImageData data = SmallData();
  AsyncFdaConfig async;
  async.theta = 0.05;
  async.monitor.kind = MonitorKind::kLinear;
  async.max_total_worker_steps = 200;
  auto run_once = [&] {
    AsyncFdaTrainer trainer(MlpFactory(), data.train, data.test,
                            BaseConfig(), async);
    auto result = trainer.Run();
    FEDRA_CHECK(result.ok());
    return *result;
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a.sync_count, b.sync_count);
  EXPECT_DOUBLE_EQ(a.sim_wall_seconds, b.sim_wall_seconds);
  EXPECT_EQ(a.base.comm.bytes_total, b.base.comm.bytes_total);
}

TEST(AsyncFdaTest, FasterThanBspUnderHeavyStragglers) {
  // The §3.3 claim: async lets fast workers proceed. Compare simulated
  // seconds per completed worker step against the synchronous trainer's
  // BSP barrier (which pays the slowest worker's time every step).
  SynthImageData data = SmallData();
  TrainerConfig config = BaseConfig();
  config.num_workers = 5;
  // Half the workers are 8x slower in expectation; both trainers derive
  // the same per-worker factors from the seed (shared fork id), so the
  // comparison is apples-to-apples.
  config.straggler = StragglerModel::Heavy(0.01);
  config.straggler.slow_worker_prob = 0.5;
  config.seed = 31;

  // BSP-style: the synchronous trainer accounts max-over-workers per step.
  TrainerConfig bsp_config = config;
  bsp_config.max_steps = 100;
  DistributedTrainer bsp_trainer(MlpFactory(), data.train, data.test,
                                 bsp_config);
  auto policy = MakeSyncPolicy(AlgorithmConfig::LinearFda(0.05),
                               bsp_trainer.model_dim());
  ASSERT_TRUE(policy.ok());
  auto bsp = bsp_trainer.Run(policy->get());
  ASSERT_TRUE(bsp.ok());
  const double bsp_seconds_per_step =
      bsp->compute_seconds / static_cast<double>(bsp->total_steps);

  AsyncFdaConfig async;
  async.theta = 0.05;
  async.monitor.kind = MonitorKind::kLinear;
  async.max_total_worker_steps = 100 * 5;
  AsyncFdaTrainer async_trainer(MlpFactory(), data.train, data.test, config,
                                async);
  auto result = async_trainer.Run();
  ASSERT_TRUE(result.ok());
  const double async_seconds_per_step =
      result->sim_wall_seconds /
      (static_cast<double>(result->total_worker_steps) / 5.0);

  // With ~20% of workers 8x slower, BSP pays ~8x base per step while async
  // pays ~mean; require a clear separation.
  EXPECT_LT(async_seconds_per_step, 0.7 * bsp_seconds_per_step);
}

TEST(AsyncFdaTest, ReachesAccuracyTarget) {
  SynthImageData data = SmallData();
  TrainerConfig config = BaseConfig();
  config.accuracy_target = 0.5;
  AsyncFdaConfig async;
  async.theta = 0.02;
  async.monitor.kind = MonitorKind::kSketch;
  async.monitor.sketch_cols = 64;
  async.max_total_worker_steps = 4000;
  AsyncFdaTrainer trainer(MlpFactory(), data.train, data.test, config,
                          async);
  auto result = trainer.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->base.reached_target);
  EXPECT_GT(result->base.final_test_accuracy, 0.45);
}

}  // namespace
}  // namespace fedra
