// Model-zoo tests: each architecture builds, has the expected relative
// scale, produces correct logits shapes, initializes deterministically, and
// learns (loss decreases / gradient check passes) on small inputs.

#include <gtest/gtest.h>

#include "nn/loss.h"
#include "nn/zoo.h"
#include "opt/optimizer.h"
#include "tests/test_util.h"

namespace fedra {
namespace {

using testing::CheckParamGradient;
using testing::FillUniform;

struct ZooCase {
  std::string name;
  std::function<std::unique_ptr<Model>()> factory;
  int channels;
  int image_size;
};

std::vector<ZooCase> AllZooCases() {
  return {
      {"LeNet5", [] { return zoo::LeNet5(1, 16, 10); }, 1, 16},
      {"VggStar", [] { return zoo::VggStar(1, 16, 10); }, 1, 16},
      {"DenseNet121", [] { return zoo::DenseNet121Lite(3, 16, 10); }, 3, 16},
      {"DenseNet201", [] { return zoo::DenseNet201Lite(3, 16, 10); }, 3, 16},
      {"ConvNeXt", [] { return zoo::ConvNeXtLite(3, 16, 10, 16); }, 3, 16},
      {"MLP", [] { return zoo::Mlp(16 * 16, {64, 32}, 10); }, 1, 16},
  };
}

class ZooModelTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ZooModelTest, BuildsAndForwardShapeIsLogits) {
  ZooCase test_case = AllZooCases()[GetParam()];
  auto model = test_case.factory();
  ASSERT_NE(model, nullptr);
  EXPECT_GT(model->num_params(), 100u);
  model->InitParams(42);
  Tensor x({2, test_case.channels, test_case.image_size,
            test_case.image_size});
  Rng rng(1);
  FillUniform(&x, &rng);
  Tensor logits = model->Forward(x, false);
  ASSERT_EQ(logits.rank(), 2);
  EXPECT_EQ(logits.dim(0), 2);
  EXPECT_EQ(logits.dim(1), 10);
  for (size_t i = 0; i < logits.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(logits[i]));
  }
}

TEST_P(ZooModelTest, InitIsDeterministic) {
  ZooCase test_case = AllZooCases()[GetParam()];
  auto m1 = test_case.factory();
  auto m2 = test_case.factory();
  m1->InitParams(7);
  m2->InitParams(7);
  for (size_t i = 0; i < m1->num_params(); ++i) {
    ASSERT_EQ(m1->params()[i], m2->params()[i]) << "param " << i;
  }
}

TEST_P(ZooModelTest, DifferentSeedsGiveDifferentInit) {
  ZooCase test_case = AllZooCases()[GetParam()];
  auto m1 = test_case.factory();
  auto m2 = test_case.factory();
  m1->InitParams(7);
  m2->InitParams(8);
  size_t differing = 0;
  for (size_t i = 0; i < m1->num_params(); ++i) {
    differing += m1->params()[i] != m2->params()[i];
  }
  // Norm layers init to constants; the rest must differ.
  EXPECT_GT(differing, m1->num_params() / 4);
}

TEST_P(ZooModelTest, ParamGradientMatchesFiniteDifferences) {
  ZooCase test_case = AllZooCases()[GetParam()];
  auto model = test_case.factory();
  model->InitParams(11);
  Tensor x({2, test_case.channels, test_case.image_size,
            test_case.image_size});
  Rng rng(2);
  FillUniform(&x, &rng, -0.5f, 0.5f);
  auto result = CheckParamGradient(model.get(), x, {1, 7},
                                   /*num_probes=*/24, 300);
  EXPECT_LT(result.max_rel_error, 0.12)
      << test_case.name << " abs=" << result.max_abs_error;
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooModelTest,
                         ::testing::Range<size_t>(0, 6));

TEST(ZooScaleTest, ParameterOrderingMatchesPaper) {
  // The paper's ordering: LeNet-5 < VGG16* < DenseNet121 < DenseNet201
  // < ConvNeXtLarge. Our reduced-width zoo must preserve it.
  const size_t lenet = zoo::LeNet5(1, 16, 10)->num_params();
  const size_t vgg = zoo::VggStar(1, 16, 10)->num_params();
  const size_t d121 = zoo::DenseNet121Lite(3, 16, 10)->num_params();
  const size_t d201 = zoo::DenseNet201Lite(3, 16, 10)->num_params();
  const size_t convnext = zoo::ConvNeXtLite(3, 16, 10, 40)->num_params();
  EXPECT_LT(lenet, vgg);
  EXPECT_LT(vgg, d121);
  EXPECT_LT(d121, d201);
  EXPECT_LT(d201, convnext);
}

TEST(ZooScaleTest, MlpWidthControlsDimension) {
  const size_t small = zoo::Mlp(64, {16}, 10)->num_params();
  const size_t large = zoo::Mlp(64, {128}, 10)->num_params();
  EXPECT_GT(large, 4 * small);
}

TEST(ZooTrainTest, LeNetLossDecreasesOnToyProblem) {
  auto model = zoo::LeNet5(1, 16, 4);
  model->InitParams(3);
  auto optimizer = Optimizer::Create(OptimizerConfig::Adam(0.003f),
                                     model->num_params());
  Rng rng(4);
  // Four fixed patterns, one per class.
  Tensor x({4, 1, 16, 16});
  FillUniform(&x, &rng);
  const std::vector<int> labels = {0, 1, 2, 3};
  double first_loss = 0.0;
  double last_loss = 0.0;
  for (int step = 0; step < 60; ++step) {
    model->ZeroGrads();
    Tensor logits = model->Forward(x, true, &rng);
    LossResult loss = SoftmaxCrossEntropy(logits, labels);
    model->Backward(loss.grad_logits);
    optimizer->Step(model->params(), model->grads(), model->num_params());
    if (step == 0) {
      first_loss = loss.loss;
    }
    last_loss = loss.loss;
  }
  EXPECT_LT(last_loss, 0.5 * first_loss);
}

TEST(ZooTrainTest, MlpMemorizesToyProblem) {
  auto model = zoo::Mlp(8, {32}, 2);
  model->InitParams(5);
  auto optimizer = Optimizer::Create(OptimizerConfig::Adam(0.01f),
                                     model->num_params());
  Rng rng(6);
  Tensor x({8, 8});
  FillUniform(&x, &rng);
  std::vector<int> labels;
  for (int i = 0; i < 8; ++i) {
    labels.push_back(i % 2);
  }
  for (int step = 0; step < 200; ++step) {
    model->ZeroGrads();
    Tensor logits = model->Forward(x, true, &rng);
    LossResult loss = SoftmaxCrossEntropy(logits, labels);
    model->Backward(loss.grad_logits);
    optimizer->Step(model->params(), model->grads(), model->num_params());
  }
  Tensor logits = model->Forward(x, false);
  EXPECT_EQ(CountCorrect(logits, labels), 8u);
}

TEST(ModelTest, CopyParamsFromMakesReplicas) {
  auto a = zoo::Mlp(8, {16}, 3);
  auto b = zoo::Mlp(8, {16}, 3);
  a->InitParams(1);
  b->InitParams(2);
  b->CopyParamsFrom(*a);
  for (size_t i = 0; i < a->num_params(); ++i) {
    ASSERT_EQ(a->params()[i], b->params()[i]);
  }
  // Replicas produce identical outputs.
  Rng rng(3);
  Tensor x({2, 8});
  FillUniform(&x, &rng);
  Tensor ya = a->Forward(x, false);
  Tensor yb = b->Forward(x, false);
  for (size_t i = 0; i < ya.numel(); ++i) {
    ASSERT_EQ(ya[i], yb[i]);
  }
}

TEST(ModelDeathTest, CopyAcrossArchitecturesDies) {
  auto a = zoo::Mlp(8, {16}, 3);
  auto b = zoo::Mlp(8, {17}, 3);
  EXPECT_DEATH(b->CopyParamsFrom(*a), "architecture");
}

TEST(ZooDeathTest, BadGeometryDies) {
  EXPECT_DEATH(zoo::LeNet5(1, 10, 10), "image_size");
  EXPECT_DEATH(zoo::VggStar(1, 12, 10), "image_size");
}

}  // namespace
}  // namespace fedra
