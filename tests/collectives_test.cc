// Collectives regression suite: the parallel reduction engine is
// numerically transparent (identical means for every transport algorithm
// and topology, matching the serial scalar oracle), bit-deterministic
// across runs, and the byte/time accounting matches the cost model
// formulas exactly — including the three historical accounting bugs: flat
// AllReduce time now charges K payloads through the shared channel,
// Broadcast bills K-1 transfers (and counts as a broadcast, not an
// AllReduce), and variable-size compressed payloads are billed at the
// per-worker sum.

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "sim/collectives.h"
#include "sim/network_model.h"
#include "tensor/ref_ops.h"
#include "util/rng.h"

namespace fedra {
namespace {

std::vector<std::vector<float>> RandomBuffers(int num_workers, size_t n,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> buffers(static_cast<size_t>(num_workers));
  for (auto& buffer : buffers) {
    buffer.resize(n);
    for (auto& x : buffer) {
      x = rng.NextUniform(-5.0f, 5.0f);
    }
  }
  return buffers;
}

std::vector<float*> Pointers(std::vector<std::vector<float>>& buffers) {
  std::vector<float*> pointers;
  for (auto& buffer : buffers) {
    pointers.push_back(buffer.data());
  }
  return pointers;
}

std::vector<const float*> ConstPointers(
    const std::vector<std::vector<float>>& buffers) {
  std::vector<const float*> pointers;
  for (const auto& buffer : buffers) {
    pointers.push_back(buffer.data());
  }
  return pointers;
}

// A network model with round-number parameters so golden values are exact.
NetworkModel TestModel() {
  NetworkModel model;
  model.name = "test";
  model.bandwidth_bytes_per_sec = 1e9;
  model.latency_seconds = 1e-3;
  return model;
}

// ----------------------------------------------------- numeric parity ----

// The engine's mean must be independent of the transport algorithm and
// topology (they only change cost accounting), and must match the serial
// scalar oracle. Spans larger than one 32768-element pool chunk exercise
// the chunked parallel path.
TEST(ReductionEngineTest, MeanMatchesOracleForEveryAlgorithmAndTopology) {
  for (int workers : {2, 5, 8}) {
    for (size_t n : {size_t{1}, size_t{37}, size_t{1} << 13,
                     (size_t{1} << 16) + 7}) {
      auto original = RandomBuffers(workers, n, 1000 + n + workers);
      std::vector<float> expected(n);
      ref::ReduceScale(ConstPointers(original).data(),
                       static_cast<size_t>(workers), n,
                       1.0 / workers, expected.data());

      auto run = [&](SimNetwork network) {
        auto buffers = original;
        auto pointers = Pointers(buffers);
        network.AllReduceAverage(pointers, n, TrafficClass::kModelSync);
        return buffers;
      };
      const auto flat = run(SimNetwork(workers, TestModel(),
                                       AllReduceAlgorithm::kFlat));
      const auto ring = run(SimNetwork(workers, TestModel(),
                                       AllReduceAlgorithm::kRing));
      const auto halving = run(SimNetwork(
          workers, TestModel(), AllReduceAlgorithm::kRecursiveHalving));
      const auto grouped = run(SimNetwork(
          workers, HierarchicalNetworkModel::EdgeCloud(2),
          AllReduceAlgorithm::kFlat));

      for (int k = 0; k < workers; ++k) {
        for (size_t i = 0; i < n; ++i) {
          ASSERT_NEAR(flat[static_cast<size_t>(k)][i], expected[i], 1e-5)
              << "worker " << k << " i " << i;
          // Identical engine => bitwise-identical results across transports.
          ASSERT_EQ(flat[static_cast<size_t>(k)][i],
                    ring[static_cast<size_t>(k)][i]);
          ASSERT_EQ(flat[static_cast<size_t>(k)][i],
                    halving[static_cast<size_t>(k)][i]);
          ASSERT_EQ(flat[static_cast<size_t>(k)][i],
                    grouped[static_cast<size_t>(k)][i]);
        }
      }
    }
  }
}

TEST(ReductionEngineTest, BitDeterministicAcrossRuns) {
  const int workers = 7;
  const size_t n = (size_t{1} << 17) + 311;  // several pool chunks
  auto original = RandomBuffers(workers, n, 77);
  auto run = [&] {
    auto buffers = original;
    auto pointers = Pointers(buffers);
    SimNetwork network(workers, NetworkModel::Hpc(),
                       AllReduceAlgorithm::kRing);
    network.AllReduceAverage(pointers, n, TrafficClass::kModelSync);
    return buffers;
  };
  const auto a = run();
  const auto b = run();
  for (int k = 0; k < workers; ++k) {
    ASSERT_EQ(0, std::memcmp(a[static_cast<size_t>(k)].data(),
                             b[static_cast<size_t>(k)].data(),
                             n * sizeof(float)));
  }
}

TEST(ReductionEngineTest, WeightedAverageMatchesOracle) {
  const int workers = 5;
  const size_t n = (size_t{1} << 16) + 13;
  auto original = RandomBuffers(workers, n, 123);
  std::vector<double> weights = {1.0, 2.0, 0.5, 3.0, 1.5};
  double sum = 0.0;
  for (double w : weights) {
    sum += w;
  }
  std::vector<double> normalized = weights;
  for (auto& w : normalized) {
    w /= sum;
  }
  std::vector<float> expected(n);
  ref::WeightedReduce(ConstPointers(original).data(), normalized.data(),
                      static_cast<size_t>(workers), n, expected.data());
  auto buffers = original;
  auto pointers = Pointers(buffers);
  SimNetwork network(workers, TestModel(), AllReduceAlgorithm::kFlat);
  network.AllReduceWeightedAverage(pointers, weights, n,
                                   TrafficClass::kModelSync);
  for (int k = 0; k < workers; ++k) {
    for (size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(buffers[static_cast<size_t>(k)][i], expected[i], 1e-5);
    }
  }
}

TEST(ReductionEngineTest, ReduceMeanIntoMatchesOracle) {
  // The trainers' eval-model averaging helper (no accounting).
  const size_t n = (size_t{1} << 16) + 9;
  const int workers = 6;
  auto buffers = RandomBuffers(workers, n, 321);
  std::vector<float> expected(n), got(n);
  auto srcs = ConstPointers(buffers);
  ref::ReduceScale(srcs.data(), srcs.size(), n, 1.0 / workers,
                   expected.data());
  ReduceMeanInto(srcs.data(), srcs.size(), n, got.data());
  for (size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(got[i], expected[i], 1e-5);
  }
}

// ------------------------------------------------ accounting goldens ----

TEST(AccountingTest, FlatTimeChargesKPayloadsThroughSharedChannel) {
  // Historical bug: flat time charged 1 payload while flat bytes charged K.
  const size_t n = 100;
  const size_t payload = n * sizeof(float);
  const int workers = 4;
  SimNetwork network(workers, TestModel(), AllReduceAlgorithm::kFlat);
  auto buffers = RandomBuffers(workers, n, 1);
  auto pointers = Pointers(buffers);
  network.AllReduceAverage(pointers, n, TrafficClass::kModelSync);
  EXPECT_EQ(network.stats().bytes_total, workers * payload);
  EXPECT_DOUBLE_EQ(network.stats().comm_seconds,
                   1e-3 + static_cast<double>(workers * payload) / 1e9);
}

TEST(AccountingTest, RecursiveHalvingFormulas) {
  const size_t payload = 1000;
  // K = 8: 3 halving + 3 doubling rounds, 2 * 7/8 payload per worker.
  EXPECT_EQ(NetworkModel::AllReduceTotalBytes(
                payload, 8, AllReduceAlgorithm::kRecursiveHalving),
            2u * payload * 7u);
  EXPECT_DOUBLE_EQ(TestModel().AllReduceSeconds(
                       payload, 8, AllReduceAlgorithm::kRecursiveHalving),
                   2.0 * 3 * 1e-3 + 2.0 * 7 * payload / (8 * 1e9));
  // Non-power-of-two K = 5: ceil(log2 5) = 3 rounds each way.
  EXPECT_EQ(NetworkModel::AllReduceTotalBytes(
                payload, 5, AllReduceAlgorithm::kRecursiveHalving),
            2u * payload * 4u);
  EXPECT_DOUBLE_EQ(TestModel().AllReduceSeconds(
                       payload, 5, AllReduceAlgorithm::kRecursiveHalving),
                   2.0 * 3 * 1e-3 + 2.0 * 4 * payload / (5 * 1e9));
  EXPECT_EQ(NetworkModel::AllReduceTotalBytes(
                payload, 1, AllReduceAlgorithm::kRecursiveHalving),
            0u);
}

TEST(AccountingTest, HalvingBeatsRingOnLatencyBoundPayloads) {
  // The reason kRecursiveHalving exists: log K latency rounds instead of
  // 2 (K-1). Tiny payload on a high-latency link => halving wins.
  NetworkModel model = NetworkModel::Federated();
  const double ring =
      model.AllReduceSeconds(64, 16, AllReduceAlgorithm::kRing);
  const double halving =
      model.AllReduceSeconds(64, 16, AllReduceAlgorithm::kRecursiveHalving);
  EXPECT_LT(halving, ring);
}

TEST(AccountingTest, BroadcastBillsKMinusOneTransfers) {
  // Historical bugs: Broadcast charged one transfer's time regardless of
  // fan-out, counted as an allreduce, and never counted as a model sync.
  const size_t n = 128;
  const size_t payload = n * sizeof(float);
  const int workers = 4;
  SimNetwork network(workers, TestModel(), AllReduceAlgorithm::kFlat);
  auto buffers = RandomBuffers(workers, n, 2);
  auto pointers = Pointers(buffers);
  network.Broadcast(pointers, n, /*root=*/1, TrafficClass::kModelSync);
  for (const auto& buffer : buffers) {
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(buffer[i], buffers[1][i]);
    }
  }
  EXPECT_EQ(network.stats().broadcast_calls, 1u);
  EXPECT_EQ(network.stats().allreduce_calls, 0u);
  EXPECT_EQ(network.stats().model_sync_count, 1u);
  EXPECT_EQ(network.stats().bytes_total, 3u * payload);
  EXPECT_EQ(network.stats().bytes_model_sync, 3u * payload);
  EXPECT_DOUBLE_EQ(network.stats().comm_seconds,
                   1e-3 + 3.0 * payload / 1e9);
}

TEST(AccountingTest, BroadcastLocalStateDoesNotCountAsModelSync) {
  const int workers = 3;
  SimNetwork network(workers, TestModel(), AllReduceAlgorithm::kFlat);
  auto buffers = RandomBuffers(workers, 8, 3);
  auto pointers = Pointers(buffers);
  network.Broadcast(pointers, 8, /*root=*/0, TrafficClass::kLocalState);
  EXPECT_EQ(network.stats().broadcast_calls, 1u);
  EXPECT_EQ(network.stats().model_sync_count, 0u);
  EXPECT_EQ(network.stats().bytes_local_state, network.stats().bytes_total);
}

TEST(AccountingTest, VariablePayloadsBillThePerWorkerSum) {
  // Historical bug: the compressed-sync path billed the collective at the
  // *last* worker's wire size. With per-worker sizes the total is the sum.
  const size_t n = 64;
  const int workers = 4;
  SimNetwork network(workers, TestModel(), AllReduceAlgorithm::kFlat);
  auto buffers = RandomBuffers(workers, n, 4);
  auto pointers = Pointers(buffers);
  const std::vector<size_t> payloads = {100, 200, 300, 400};
  network.AllReduceAverageWithPayloads(pointers, n, payloads,
                                       TrafficClass::kModelSync);
  EXPECT_EQ(network.stats().bytes_total, 1000u);
  EXPECT_DOUBLE_EQ(network.stats().comm_seconds, 1e-3 + 1000.0 / 1e9);
  // The sum-based byte mapping is shared by every algorithm: ring moves
  // 2 (K-1)/K of the summed wire size.
  EXPECT_DOUBLE_EQ(NetworkModel::AllReduceTotalBytesFromSum(
                       1000.0, 4, AllReduceAlgorithm::kRing),
                   1500.0);
  // The arithmetic still averaged the n floats exactly.
  std::vector<float> expected(n);
  auto original = RandomBuffers(workers, n, 4);
  ref::ReduceScale(ConstPointers(original).data(),
                   static_cast<size_t>(workers), n, 1.0 / workers,
                   expected.data());
  for (size_t i = 0; i < n; ++i) {
    ASSERT_NEAR(buffers[0][i], expected[i], 1e-5);
  }
}

TEST(AccountingTest, PerTrafficClassSecondsSumToTotal) {
  SimNetwork network(4, TestModel(), AllReduceAlgorithm::kFlat);
  auto buffers = RandomBuffers(4, 256, 5);
  auto pointers = Pointers(buffers);
  network.AllReduceAverage(pointers, 2, TrafficClass::kLocalState);
  network.AllReduceAverage(pointers, 256, TrafficClass::kModelSync);
  network.PointToPoint(16, TrafficClass::kLocalState);
  const CommStats& stats = network.stats();
  EXPECT_GT(stats.seconds_local_state, 0.0);
  EXPECT_GT(stats.seconds_model_sync, 0.0);
  // The splits accumulate in separate doubles; sums agree up to rounding.
  EXPECT_NEAR(stats.seconds_local_state + stats.seconds_model_sync,
              stats.comm_seconds, 1e-12);
  EXPECT_NEAR(stats.seconds_intra + stats.seconds_uplink,
              stats.comm_seconds, 1e-12);
  EXPECT_EQ(stats.p2p_calls, 1u);
}

// --------------------------------------------------------- hierarchical ----

HierarchicalNetworkModel TestHierarchy(int num_clusters) {
  HierarchicalNetworkModel h;
  h.name = "test2tier";
  h.intra = TestModel();
  h.intra.bandwidth_bytes_per_sec = 2e9;
  h.intra.latency_seconds = 1e-4;
  h.uplink = TestModel();
  h.uplink.bandwidth_bytes_per_sec = 1e8;
  h.uplink.latency_seconds = 1e-2;
  h.num_clusters = num_clusters;
  return h;
}

TEST(HierarchicalTest, SingleClusterMatchesFlatNumerically) {
  const int workers = 6;
  const size_t n = (size_t{1} << 15) + 3;
  auto original = RandomBuffers(workers, n, 6);

  auto flat_buffers = original;
  auto flat_pointers = Pointers(flat_buffers);
  SimNetwork flat(workers, TestModel(), AllReduceAlgorithm::kFlat);
  flat.AllReduceAverage(flat_pointers, n, TrafficClass::kModelSync);

  auto grouped_buffers = original;
  auto grouped_pointers = Pointers(grouped_buffers);
  SimNetwork grouped(workers, TestHierarchy(1), AllReduceAlgorithm::kFlat);
  grouped.AllReduceAverage(grouped_pointers, n, TrafficClass::kModelSync);

  for (int k = 0; k < workers; ++k) {
    ASSERT_EQ(0, std::memcmp(flat_buffers[static_cast<size_t>(k)].data(),
                             grouped_buffers[static_cast<size_t>(k)].data(),
                             n * sizeof(float)));
  }
  // One cluster: no uplink traffic at all; gather + broadcast stay intra.
  EXPECT_EQ(grouped.stats().bytes_total,
            2u * 5u * n * sizeof(float));  // 2 phases x (K-1) payloads
  EXPECT_GT(grouped.stats().seconds_intra, 0.0);
  EXPECT_DOUBLE_EQ(grouped.stats().seconds_uplink, 0.0);
  EXPECT_DOUBLE_EQ(grouped.stats().seconds_intra,
                   grouped.stats().comm_seconds);
}

TEST(HierarchicalTest, TwoClusterGroupedAllReduceGolden) {
  // K = 4 workers in 2 clusters of 2. Per-worker payload p:
  //   gather:    intra latency + 1 payload over the 2 GB/s link, 2p bytes
  //   cross:     flat AllReduce of 2 leaders over the uplink, 2p bytes
  //   broadcast: same as gather.
  const size_t n = 1024;
  const size_t p = n * sizeof(float);
  const int workers = 4;
  SimNetwork network(workers, TestHierarchy(2), AllReduceAlgorithm::kFlat);
  auto buffers = RandomBuffers(workers, n, 7);
  auto pointers = Pointers(buffers);
  network.AllReduceAverage(pointers, n, TrafficClass::kModelSync);
  const CommStats& stats = network.stats();
  const double intra_phase = 1e-4 + static_cast<double>(p) / 2e9;
  const double uplink_phase = 1e-2 + 2.0 * static_cast<double>(p) / 1e8;
  EXPECT_DOUBLE_EQ(stats.seconds_intra, 2.0 * intra_phase);
  EXPECT_DOUBLE_EQ(stats.seconds_uplink, uplink_phase);
  EXPECT_DOUBLE_EQ(stats.comm_seconds, 2.0 * intra_phase + uplink_phase);
  EXPECT_EQ(stats.bytes_total, 6u * p);
  EXPECT_EQ(stats.bytes_model_sync, 6u * p);
  EXPECT_EQ(stats.model_sync_count, 1u);
}

TEST(HierarchicalTest, ModelSyncSecondsMatchesAccountedCharge) {
  const size_t n = 4096;
  const int workers = 8;
  SimNetwork network(workers, TestHierarchy(2),
                     AllReduceAlgorithm::kRecursiveHalving);
  auto buffers = RandomBuffers(workers, n, 8);
  auto pointers = Pointers(buffers);
  const double predicted = network.ModelSyncSeconds(n * sizeof(float));
  network.AllReduceAverage(pointers, n, TrafficClass::kModelSync);
  EXPECT_DOUBLE_EQ(network.stats().comm_seconds, predicted);
}

TEST(HierarchicalTest, PointToPointCrossesBothTiers) {
  SimNetwork network(4, TestHierarchy(2), AllReduceAlgorithm::kFlat);
  network.PointToPoint(100, TrafficClass::kLocalState);
  const size_t p = 400;
  EXPECT_EQ(network.stats().bytes_total, 2u * p);  // intra hop + uplink hop
  EXPECT_DOUBLE_EQ(network.stats().seconds_intra,
                   1e-4 + static_cast<double>(p) / 2e9);
  EXPECT_DOUBLE_EQ(network.stats().seconds_uplink,
                   1e-2 + static_cast<double>(p) / 1e8);
}

TEST(HierarchicalTest, UnevenClustersUseLargestForTime) {
  // K = 5 in 2 clusters -> sizes {3, 2}; phases pace on the 3-cluster.
  const size_t p = 1000;
  auto h = TestHierarchy(2);
  EXPECT_EQ(h.MaxClusterSize(5), 3);
  const auto cost =
      h.GroupedAllReduceCost(p, 5, AllReduceAlgorithm::kFlat);
  EXPECT_DOUBLE_EQ(cost.intra_seconds,
                   2.0 * (1e-4 + 2.0 * static_cast<double>(p) / 2e9));
  // Members: 5 workers - 2 leaders = 3 payloads per intra phase.
  EXPECT_EQ(cost.intra_bytes, 2u * 3u * p);
}

TEST(HierarchicalTest, PerClusterIntraLinksDefaultToSharedModel) {
  // Populating cluster_intra with copies of the shared model must not
  // change any cost — the heterogeneous path degenerates bit-exactly.
  const size_t p = 1000;
  auto shared = TestHierarchy(2);
  auto hetero = TestHierarchy(2);
  hetero.cluster_intra = {hetero.intra, hetero.intra};
  for (int workers : {2, 4, 5, 9}) {
    const auto a =
        shared.GroupedAllReduceCost(p, workers, AllReduceAlgorithm::kFlat);
    const auto b =
        hetero.GroupedAllReduceCost(p, workers, AllReduceAlgorithm::kFlat);
    EXPECT_DOUBLE_EQ(a.intra_seconds, b.intra_seconds) << workers;
    EXPECT_DOUBLE_EQ(a.uplink_seconds, b.uplink_seconds) << workers;
    EXPECT_EQ(a.intra_bytes, b.intra_bytes) << workers;
    EXPECT_EQ(a.uplink_bytes, b.uplink_bytes) << workers;
  }
}

TEST(HierarchicalTest, HeterogeneousClusterLinksPaceOnTheirOwnModel) {
  // K = 4 in 2 clusters of 2; cluster 1's intra link is 10x slower than
  // cluster 0's, so both intra phases pace on cluster 1 even though the
  // cluster sizes match.
  const size_t p = 1 << 20;
  auto h = TestHierarchy(2);
  h.cluster_intra = {h.intra, h.intra};
  h.cluster_intra[1].bandwidth_bytes_per_sec = 2e8;  // 10x slower
  EXPECT_EQ(h.ClusterSize(0, 4), 2);
  EXPECT_EQ(h.ClusterSize(1, 4), 2);
  const auto cost = h.GroupedAllReduceCost(p, 4, AllReduceAlgorithm::kFlat);
  const double slow_phase = 1e-4 + static_cast<double>(p) / 2e8;
  EXPECT_DOUBLE_EQ(cost.intra_seconds, 2.0 * slow_phase);
  // Bytes do not depend on link speed: 2 members x 2 phases.
  EXPECT_EQ(cost.intra_bytes, 2u * 2u * p);

  // A fast model for cluster 1 instead hands pacing back to cluster 0.
  h.cluster_intra[1].bandwidth_bytes_per_sec = 2e10;
  const auto fast = h.GroupedAllReduceCost(p, 4, AllReduceAlgorithm::kFlat);
  const double shared_phase = 1e-4 + static_cast<double>(p) / 2e9;
  EXPECT_DOUBLE_EQ(fast.intra_seconds, 2.0 * shared_phase);
}

TEST(HierarchicalTest, ClusterSizesAreContiguousAndBalanced) {
  auto h = TestHierarchy(3);
  // 8 workers over 3 clusters: sizes {3, 3, 2}.
  EXPECT_EQ(h.ClusterSize(0, 8), 3);
  EXPECT_EQ(h.ClusterSize(1, 8), 3);
  EXPECT_EQ(h.ClusterSize(2, 8), 2);
  EXPECT_EQ(h.MaxClusterSize(8), 3);
}

TEST(AccountingTest, SlowestLinkPacesFlatCollectives) {
  // Golden straggler accounting: with a 4x-slow worker on the shared
  // channel, the flat AllReduce takes latency + K * p / (bw / 4) — the
  // slowest participating link paces everyone. Bytes stay unchanged.
  const size_t n = 1024;
  const size_t p = n * sizeof(float);
  const int workers = 4;
  SimNetwork network(workers, TestModel(), AllReduceAlgorithm::kFlat);
  network.SetWorkerLinkFactors({1.0, 4.0, 1.0, 1.0});
  auto buffers = RandomBuffers(workers, n, 21);
  auto pointers = Pointers(buffers);
  network.AllReduceAverage(pointers, n, TrafficClass::kModelSync);
  EXPECT_DOUBLE_EQ(network.stats().comm_seconds,
                   1e-3 + 4.0 * static_cast<double>(workers) *
                              static_cast<double>(p) / 1e9);
  EXPECT_EQ(network.stats().bytes_total,
            static_cast<size_t>(workers) * p);
}

TEST(AccountingTest, AllOnesLinkFactorsMatchHomogeneousExactly) {
  const size_t n = 2048;
  const int workers = 5;
  auto run = [&](bool with_factors) {
    SimNetwork network(workers, TestModel(), AllReduceAlgorithm::kRing);
    if (with_factors) {
      network.SetWorkerLinkFactors(std::vector<double>(workers, 1.0));
    }
    auto buffers = RandomBuffers(workers, n, 22);
    auto pointers = Pointers(buffers);
    network.AllReduceAverage(pointers, n, TrafficClass::kModelSync);
    network.Broadcast(pointers, n, 0, TrafficClass::kModelSync);
    return network.stats();
  };
  const CommStats plain = run(false);
  const CommStats ones = run(true);
  EXPECT_DOUBLE_EQ(plain.comm_seconds, ones.comm_seconds);
  EXPECT_EQ(plain.bytes_total, ones.bytes_total);
}

TEST(AccountingTest, SlowestMemberPacesItsClusterOnly) {
  // K = 4 in 2 clusters of 2; worker 3 (cluster 1) is 8x slow. Cluster 1's
  // intra phases slow 8x, cluster 0's do not — pacing takes the max. The
  // uplink is paced by leaders (workers 0 and 2), both factor 1.
  const size_t p = 1 << 20;
  auto h = TestHierarchy(2);
  const std::vector<double> factors = {1.0, 1.0, 1.0, 8.0};
  const auto cost =
      h.GroupedAllReduceCost(p, 4, AllReduceAlgorithm::kFlat, &factors);
  const double slow_phase = 1e-4 + static_cast<double>(p) / (2e9 / 8.0);
  EXPECT_DOUBLE_EQ(cost.intra_seconds, 2.0 * slow_phase);
  const double uplink_phase = 1e-2 + 2.0 * static_cast<double>(p) / 1e8;
  EXPECT_DOUBLE_EQ(cost.uplink_seconds, uplink_phase);

  // A slow *leader* (worker 2) instead slows the uplink phase.
  const std::vector<double> slow_leader = {1.0, 1.0, 8.0, 1.0};
  const auto leader_cost =
      h.GroupedAllReduceCost(p, 4, AllReduceAlgorithm::kFlat, &slow_leader);
  EXPECT_DOUBLE_EQ(leader_cost.uplink_seconds,
                   1e-2 + 2.0 * static_cast<double>(p) / (1e8 / 8.0));
}

TEST(AccountingTest, PointToPointBillsTheUploadingWorkersLink) {
  // A slow worker's state uploads transit *its* link: the same straggler
  // factor that paces collectives also paces its point-to-point traffic,
  // and under a heterogeneous hierarchy the upload uses its cluster's
  // intra model. Workers without a factor stay at homogeneous cost.
  const size_t n = 100;
  const size_t p = n * sizeof(float);
  auto h = TestHierarchy(2);
  h.cluster_intra = {h.intra, h.intra};
  h.cluster_intra[1].bandwidth_bytes_per_sec = 4e8;  // workers 2, 3
  SimNetwork network(4, h, AllReduceAlgorithm::kFlat);
  network.SetWorkerLinkFactors({1.0, 1.0, 1.0, 5.0});

  network.PointToPoint(n, TrafficClass::kLocalState, 0);  // fast cluster
  EXPECT_DOUBLE_EQ(network.stats().seconds_intra,
                   1e-4 + static_cast<double>(p) / 2e9);
  const double uplink_fast = 1e-2 + static_cast<double>(p) / 1e8;
  EXPECT_DOUBLE_EQ(network.stats().seconds_uplink, uplink_fast);

  network.ResetStats();
  network.PointToPoint(n, TrafficClass::kLocalState, 3);  // slow worker
  EXPECT_DOUBLE_EQ(network.stats().seconds_intra,
                   1e-4 + static_cast<double>(p) / (4e8 / 5.0));
  EXPECT_DOUBLE_EQ(network.stats().seconds_uplink,
                   1e-2 + static_cast<double>(p) / (1e8 / 5.0));
  // Bytes are link-speed independent.
  EXPECT_EQ(network.stats().bytes_total, 2u * p);
}

TEST(AccountingTest, ModelSyncSecondsReflectsSlowestLink) {
  SimNetwork network(4, TestModel(), AllReduceAlgorithm::kFlat);
  const double before = network.ModelSyncSeconds(1 << 20);
  network.SetWorkerLinkFactors({1.0, 1.0, 6.0, 1.0});
  const double after = network.ModelSyncSeconds(1 << 20);
  EXPECT_DOUBLE_EQ(after - 1e-3, 6.0 * (before - 1e-3));
}

TEST(AccountingTest, AlgorithmNames) {
  EXPECT_STREQ(AllReduceAlgorithmName(AllReduceAlgorithm::kFlat), "flat");
  EXPECT_STREQ(AllReduceAlgorithmName(AllReduceAlgorithm::kRing), "ring");
  EXPECT_STREQ(
      AllReduceAlgorithmName(AllReduceAlgorithm::kRecursiveHalving),
      "halving");
}

TEST(HierarchicalTest, EdgeCloudPresetIsTwoTier) {
  const auto preset = HierarchicalNetworkModel::EdgeCloud(3);
  EXPECT_TRUE(preset.enabled());
  EXPECT_EQ(preset.num_clusters, 3);
  EXPECT_GT(preset.intra.bandwidth_bytes_per_sec,
            preset.uplink.bandwidth_bytes_per_sec);
  EXPECT_LT(preset.intra.latency_seconds, preset.uplink.latency_seconds);
  EXPECT_FALSE(HierarchicalNetworkModel::None().enabled());
}

}  // namespace
}  // namespace fedra
