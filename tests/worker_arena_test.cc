// WorkerArena layout/aliasing tests plus the cohort-scale proof: a
// 64-worker MLP trains against one params slab, one grads slab, and one
// shared ModelGraph (allocation and slot counts stay constant in K), and
// the slab-backed ClusterContext drives policies exactly like the old
// per-Model buffers did.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/algorithms.h"
#include "core/worker_arena.h"
#include "data/synth.h"
#include "nn/zoo.h"
#include "tensor/vec_ops.h"

namespace fedra {
namespace {

// Guard-gap floats appended to each row of a slab whose rows are `row_len`
// elements long: 0 in packed Release layouts, kGuardFloats in Debug /
// sanitizer builds.
constexpr size_t GuardGap() {
  return WorkerArena::guards_enabled() ? WorkerArena::kGuardFloats : 0;
}

TEST(WorkerArenaTest, SlabLayoutIsContiguousAndStrided) {
  const size_t dim = 37;
  WorkerArena arena(5, dim, /*opt_state_slots=*/2);
  // Row stride is the packed dim plus the canary gap (if this build has
  // guards); either way the layout is one slab with constant stride.
  EXPECT_EQ(arena.row_stride(), dim + GuardGap());
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(arena.params(k), arena.params_slab() + k * arena.row_stride());
    EXPECT_EQ(arena.grads(k), arena.grads_slab() + k * arena.row_stride());
    ParameterView view = arena.view(k);
    EXPECT_EQ(view.params, arena.params(k));
    EXPECT_EQ(view.grads, arena.grads(k));
    EXPECT_EQ(view.dim, dim);
  }
  std::vector<float*> params = arena.ParamPointers();
  ASSERT_EQ(params.size(), 5u);
  for (int k = 1; k < 5; ++k) {
    // Strided rows of one slab: constant distance between workers.
    EXPECT_EQ(params[static_cast<size_t>(k)] -
                  params[static_cast<size_t>(k - 1)],
              static_cast<ptrdiff_t>(arena.row_stride()));
  }
  // Optimizer-state slices are disjoint and slots * dim (+ gap) apart.
  EXPECT_EQ(arena.opt_state(1) - arena.opt_state(0),
            static_cast<ptrdiff_t>(2 * dim + GuardGap()));
}

TEST(WorkerArenaTest, AllocationCountIsConstantInWorkerCount) {
  const size_t dim = 101;
  WorkerArena small(4, dim, 2);
  WorkerArena large(64, dim, 2);
  // params + grads + drift + opt state, regardless of K.
  EXPECT_EQ(small.allocation_count(), 4u);
  EXPECT_EQ(large.allocation_count(), 4u);
  // A stateless optimizer drops the opt slab.
  WorkerArena sgd(64, dim, 0);
  EXPECT_EQ(sgd.allocation_count(), 3u);
  EXPECT_EQ(sgd.opt_state(0), nullptr);
  // The monitor-state slab appears on demand, once.
  WorkerArena with_state(8, dim, 0);
  with_state.AllocateStateScratch(2);
  with_state.AllocateStateScratch(2);  // idempotent
  EXPECT_EQ(with_state.allocation_count(), 4u);
  EXPECT_EQ(with_state.state_size(), 2u);
  // Memory scales as slabs, not as per-worker heap blocks: params + grads
  // + drift + two Adam state slots = 5 dim-length rows per worker, plus one
  // canary gap per row (4 slab rows per worker) in guarded builds.
  EXPECT_EQ(large.total_bytes(),
            64u * (dim * 5u + 4u * GuardGap()) * sizeof(float));
}

TEST(WorkerArenaTest, WorkerSlicesDoNotAlias) {
  const size_t dim = 16;
  WorkerArena arena(3, dim, 1);
  for (int k = 0; k < 3; ++k) {
    vec::Fill(arena.params(k), dim, static_cast<float>(k + 1));
    vec::Fill(arena.grads(k), dim, static_cast<float>(10 * (k + 1)));
    vec::Fill(arena.drift(k), dim, static_cast<float>(100 * (k + 1)));
    vec::Fill(arena.opt_state(k), dim, static_cast<float>(1000 * (k + 1)));
  }
  for (int k = 0; k < 3; ++k) {
    for (size_t i = 0; i < dim; ++i) {
      EXPECT_EQ(arena.params(k)[i], static_cast<float>(k + 1));
      EXPECT_EQ(arena.grads(k)[i], static_cast<float>(10 * (k + 1)));
      EXPECT_EQ(arena.drift(k)[i], static_cast<float>(100 * (k + 1)));
      EXPECT_EQ(arena.opt_state(k)[i], static_cast<float>(1000 * (k + 1)));
    }
  }
}

TEST(WorkerArenaTest, StateSlabBacksStatePointers) {
  WorkerArena arena(4, 8, 0);
  arena.AllocateStateScratch(3);
  std::vector<float*> states = arena.StatePointers();
  ASSERT_EQ(states.size(), 4u);
  for (int k = 1; k < 4; ++k) {
    EXPECT_EQ(states[static_cast<size_t>(k)] -
                  states[static_cast<size_t>(k - 1)],
              static_cast<ptrdiff_t>(3 + GuardGap()));
  }
  // Freshly allocated scratch is zeroed.
  for (int k = 0; k < 4; ++k) {
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(arena.state(k)[i], 0.0f);
    }
  }
}

TEST(WorkerArenaDeathTest, MismatchedStateResizeDies) {
  WorkerArena arena(2, 4, 0);
  arena.AllocateStateScratch(5);
  EXPECT_DEATH(arena.AllocateStateScratch(7), "already sized");
}

// ------------------------------------------------ debug-mode slab guards ----

// An out-of-row write must abort in guarded builds: under ASan the poisoned
// canary gap kills the write itself (use-after-poison); otherwise the next
// CheckCanaries sweep (every model sync + arena destruction) names the
// damaged slab and row. Either failure mode matches the death regex.
constexpr const char* kGuardDeathPattern = "canary smashed|AddressSanitizer";

TEST(WorkerArenaDeathTest, OutOfRowParamsWriteAborts) {
  if (!WorkerArena::guards_enabled()) {
    GTEST_SKIP() << "slab guards compiled out of plain Release builds";
  }
  EXPECT_DEATH(
      {
        WorkerArena arena(2, 8, 0);
        arena.params(0)[8] = 1.0f;  // one element past worker 0's row
        arena.CheckCanaries();
      },
      kGuardDeathPattern);
}

TEST(WorkerArenaDeathTest, OutOfRowOptStateWriteAbortsAtDestruction) {
  if (!WorkerArena::guards_enabled()) {
    GTEST_SKIP() << "slab guards compiled out of plain Release builds";
  }
  EXPECT_DEATH(
      {
        // No explicit sweep: the destructor's CheckCanaries must catch it.
        WorkerArena arena(3, 4, 2);
        arena.opt_state(1)[2 * 4 + 3] = 0.25f;  // into worker 1's gap
      },
      kGuardDeathPattern);
}

TEST(WorkerArenaDeathTest, AliasedViewSpansDie) {
  if (!WorkerArena::guards_enabled()) {
    GTEST_SKIP() << "FEDRA_DCHECK compiled out of plain Release builds";
  }
  float buffer[16] = {};
  ParameterView aliased{buffer, buffer + 4, 8};  // grads overlaps params
  EXPECT_DEATH(DcheckViewInvariants(aliased), "alias");
}

TEST(WorkerArenaTest, CleanTrafficKeepsCanariesIntact) {
  WorkerArena arena(4, 32, 1);
  arena.AllocateStateScratch(6);
  for (int k = 0; k < 4; ++k) {
    vec::Fill(arena.params(k), 32, 1.0f);
    vec::Fill(arena.grads(k), 32, 2.0f);
    vec::Fill(arena.drift(k), 32, 3.0f);
    vec::Fill(arena.opt_state(k), 32, 4.0f);
    vec::Fill(arena.state(k), 6, 5.0f);
  }
  arena.CheckCanaries();  // in-row writes never touch a guard gap
}

// ------------------------------------------------- cohort-scale proof ----

SynthImageData TinyData() {
  SynthImageConfig config = MnistLikeConfig();
  config.num_train = 256;
  config.num_test = 64;
  config.image_size = 16;
  auto data = GenerateSynthImages(config);
  FEDRA_CHECK(data.ok());
  return std::move(data).value();
}

TEST(WorkerCohortTest, SixtyFourWorkersShareOneGraph) {
  SynthImageData data = TinyData();
  TrainerConfig config;
  config.num_workers = 64;
  config.batch_size = 4;
  config.local_optimizer = OptimizerConfig::Adam(0.002f);
  config.seed = 3;
  config.max_steps = 2;
  config.eval_every_steps = 2;
  config.eval_subset = 32;
  DistributedTrainer trainer([] { return zoo::Mlp(16 * 16, {24}, 10); },
                             data.train, data.test, config);
  auto policy = MakeSyncPolicy(AlgorithmConfig::LinearFda(0.5),
                               trainer.model_dim());
  ASSERT_TRUE(policy.ok());
  auto result = trainer.Run(policy->get());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->total_steps, 2u);
  // One shared graph executed all 64 workers: sequential execution leases
  // at most one worker slot beyond the eval model's persistent slot.
  EXPECT_LE(trainer.shared_model().graph().num_slots(), 2u);
}

// ------------------------------------------- slab-backed policy parity ----

TEST(WorkerCohortTest, SynchronizeModelsAveragesSlabRows) {
  // Drive ClusterContext::SynchronizeModels directly over an arena: after
  // the sync every worker row of the params slab holds the elementwise
  // mean, and the sync snapshot rotates.
  const size_t dim = 1000;
  const int workers_n = 3;
  WorkerArena arena(workers_n, dim, 0);
  std::vector<WorkerState> workers(workers_n);
  for (int k = 0; k < workers_n; ++k) {
    workers[static_cast<size_t>(k)].view = arena.view(k);
    workers[static_cast<size_t>(k)].drift = arena.drift(k);
    vec::Fill(arena.params(k), dim, static_cast<float>(k));  // 0, 1, 2
  }
  SimNetwork network(workers_n, NetworkModel::Hpc(),
                     AllReduceAlgorithm::kFlat);
  std::vector<float> sync_params(dim, -1.0f);
  std::vector<float> prev_sync_params(dim, -2.0f);
  ClusterContext ctx;
  ctx.workers = &workers;
  ctx.arena = &arena;
  ctx.network = &network;
  ctx.dim = dim;
  ctx.sync_params = &sync_params;
  ctx.prev_sync_params = &prev_sync_params;

  ctx.SynchronizeModels();
  for (int k = 0; k < workers_n; ++k) {
    for (size_t i = 0; i < dim; ++i) {
      ASSERT_EQ(arena.params(k)[i], 1.0f) << "worker " << k;
    }
  }
  EXPECT_EQ(sync_params[0], 1.0f);
  EXPECT_EQ(prev_sync_params[0], -1.0f);  // rotated
  EXPECT_EQ(ctx.sync_count, 1u);
  EXPECT_EQ(network.stats().model_sync_count, 1u);
}

TEST(WorkerCohortTest, AllocateWorkerStatesWiresArenaSlices) {
  const size_t dim = 64;
  WorkerArena arena(4, dim, 0);
  std::vector<WorkerState> workers(4);
  for (int k = 0; k < 4; ++k) {
    workers[static_cast<size_t>(k)].view = arena.view(k);
  }
  ClusterContext ctx;
  ctx.workers = &workers;
  ctx.arena = &arena;
  ctx.dim = dim;
  ctx.AllocateWorkerStates(7);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(workers[static_cast<size_t>(k)].state, arena.state(k));
  }
  EXPECT_EQ(ctx.StatePointers()[2], arena.state(2));
}

}  // namespace
}  // namespace fedra
