// Property suite for the arbitrary-depth TopologyTree.
//
// Four locks, per the tree's contract:
//   1. numeric transparency — a tree AllReduce over any random topology
//      produces the flat ref:: oracle's mean, bitwise-identical to the
//      flat engine (topology only changes cost accounting);
//   2. bit-determinism across FEDRA_NUM_THREADS in {1, 4, 16} — checked by
//      re-executing this binary with the env var pinned and comparing
//      result hashes (the global pool size is fixed at first use, so the
//      sweep needs fresh processes);
//   3. depth-2 parity — a random two-tier hierarchy costs exactly (to the
//      last byte and the last double bit) what the original closed-form
//      HierarchicalNetworkModel formulas computed; the legacy formulas are
//      reimplemented here verbatim as the independent reference;
//   4. degeneracy — a single-node tree reproduces the flat single-tier
//      network's accounting exactly.

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/collectives.h"
#include "sim/network_model.h"
#include "sim/topology_tree.h"
#include "tensor/ref_ops.h"
#include "util/rng.h"

namespace fedra {
namespace {

std::vector<std::vector<float>> RandomBuffers(int num_workers, size_t n,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> buffers(static_cast<size_t>(num_workers));
  for (auto& buffer : buffers) {
    buffer.resize(n);
    for (auto& x : buffer) {
      x = rng.NextUniform(-5.0f, 5.0f);
    }
  }
  return buffers;
}

std::vector<float*> Pointers(std::vector<std::vector<float>>& buffers) {
  std::vector<float*> pointers;
  for (auto& buffer : buffers) {
    pointers.push_back(buffer.data());
  }
  return pointers;
}

std::vector<const float*> ConstPointers(
    const std::vector<std::vector<float>>& buffers) {
  std::vector<const float*> pointers;
  for (const auto& buffer : buffers) {
    pointers.push_back(buffer.data());
  }
  return pointers;
}

NetworkModel RandomLink(Rng& rng) {
  NetworkModel link;
  link.name = "random";
  link.bandwidth_bytes_per_sec = 1e8 * (1.0 + 50.0 * rng.NextDouble());
  link.latency_seconds = 1e-5 * (1.0 + 100.0 * rng.NextDouble());
  return link;
}

// Random tree: depth 1-4, uneven fan-out 1-4, random links, sometimes
// per-child link factors.
TopologyNode RandomNode(Rng& rng, int remaining_depth) {
  TopologyNode node;
  node.link = RandomLink(rng);
  if (remaining_depth <= 1 || rng.NextBernoulli(0.25)) {
    return node;  // leaf worker group
  }
  const int fanout = 1 + static_cast<int>(rng.NextBounded(4));
  for (int i = 0; i < fanout; ++i) {
    node.children.push_back(RandomNode(rng, remaining_depth - 1));
  }
  if (rng.NextBernoulli(0.5)) {
    for (size_t i = 0; i < node.children.size(); ++i) {
      node.child_link_factors.push_back(1.0 + 3.0 * rng.NextDouble());
    }
  }
  return node;
}

TopologyTree RandomTree(Rng& rng) {
  const int max_depth = 1 + static_cast<int>(rng.NextBounded(4));
  return TopologyTree(RandomNode(rng, max_depth), "random");
}

std::vector<double> RandomFactors(Rng& rng, int num_workers) {
  std::vector<double> factors(static_cast<size_t>(num_workers));
  for (auto& f : factors) {
    f = 1.0 + 4.0 * rng.NextDouble();
  }
  return factors;
}

// ------------------------------------------------- numeric transparency --

TEST(TopologyTreeTest, RandomTreeAllReduceMatchesFlatOracle) {
  Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    TopologyTree tree = RandomTree(rng);
    ASSERT_TRUE(tree.Validate().ok()) << tree.ToString();
    const int workers = 1 + static_cast<int>(rng.NextBounded(12));
    const size_t n =
        1 + static_cast<size_t>(rng.NextBounded((size_t{1} << 16) + 7));
    auto original = RandomBuffers(workers, n, 9000 + trial);
    std::vector<float> expected(n);
    ref::ReduceScale(ConstPointers(original).data(),
                     static_cast<size_t>(workers), n, 1.0 / workers,
                     expected.data());

    auto tree_buffers = original;
    auto tree_pointers = Pointers(tree_buffers);
    SimNetwork tree_network(workers, tree, AllReduceAlgorithm::kFlat);
    tree_network.AllReduceAverage(tree_pointers, n,
                                  TrafficClass::kModelSync);

    auto flat_buffers = original;
    auto flat_pointers = Pointers(flat_buffers);
    SimNetwork flat_network(workers, NetworkModel::Hpc(),
                            AllReduceAlgorithm::kFlat);
    flat_network.AllReduceAverage(flat_pointers, n,
                                  TrafficClass::kModelSync);

    for (int k = 0; k < workers; ++k) {
      const auto& got = tree_buffers[static_cast<size_t>(k)];
      for (size_t i = 0; i < n; ++i) {
        ASSERT_NEAR(got[i], expected[i], 1e-5)
            << tree.ToString() << " worker " << k << " i " << i;
      }
      // The engine is shared: topology changes cost, never bits.
      ASSERT_EQ(0, std::memcmp(got.data(),
                               flat_buffers[static_cast<size_t>(k)].data(),
                               n * sizeof(float)))
          << tree.ToString() << " worker " << k;
    }
  }
}

TEST(TopologyTreeTest, SubtreeAllReduceAveragesMembersOnly) {
  // 3-tier tree, 8 workers in 4 device groups of 2. Averaging site 0's
  // subtree (workers 0-3) must install the members' mean into exactly
  // those spans, leave workers 4-7 untouched, and bill nothing on the
  // root tier.
  TopologyTree tree = TopologyTree::DeviceSiteCloud(2, 2);
  const int workers = 8;
  const size_t n = (size_t{1} << 15) + 13;
  auto buffers = RandomBuffers(workers, n, 41);
  const auto original = buffers;
  std::vector<float> expected(n);
  {
    auto srcs = ConstPointers(original);
    std::vector<const float*> members(srcs.begin(), srcs.begin() + 4);
    ref::ReduceScale(members.data(), members.size(), n, 1.0 / 4.0,
                     expected.data());
  }
  SimNetwork network(workers, tree, AllReduceAlgorithm::kFlat);
  // Site 0 is node 1 in preorder (root=0, site0=1, devices=2,3, site1=4).
  const int site0 = 1;
  int begin = 0;
  int end = 0;
  network.tree().SubtreeSpan(site0, workers, &begin, &end);
  ASSERT_EQ(begin, 0);
  ASSERT_EQ(end, 4);
  auto pointers = Pointers(buffers);
  std::vector<float*> members(pointers.begin(), pointers.begin() + 4);
  network.SubtreeAllReduceAverage(site0, members, n,
                                  TrafficClass::kModelSync);
  for (int k = 0; k < 4; ++k) {
    for (size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(buffers[static_cast<size_t>(k)][i], expected[i], 1e-5);
    }
  }
  for (int k = 4; k < 8; ++k) {
    ASSERT_EQ(0, std::memcmp(buffers[static_cast<size_t>(k)].data(),
                             original[static_cast<size_t>(k)].data(),
                             n * sizeof(float)));
  }
  const CommStats& stats = network.stats();
  EXPECT_EQ(stats.subtree_allreduce_calls, 1u);
  EXPECT_EQ(stats.subtree_sync_count, 1u);
  EXPECT_EQ(stats.model_sync_count, 0u);
  // Root tier (the uplink) carries nothing; the site and device tiers do.
  EXPECT_EQ(stats.BytesAtDepth(0), 0u);
  EXPECT_DOUBLE_EQ(stats.SecondsAtDepth(0), 0.0);
  EXPECT_DOUBLE_EQ(stats.seconds_uplink, 0.0);
  EXPECT_GT(stats.SecondsAtDepth(1), 0.0);
  EXPECT_GT(stats.SecondsAtDepth(2), 0.0);
  const size_t p = n * sizeof(float);
  // Gather+broadcast: device tier moves 2 members per group x 2 groups,
  // site tier 1 child representative, each in both directions.
  EXPECT_EQ(stats.BytesAtDepth(2), 2u * 2u * p);
  EXPECT_EQ(stats.BytesAtDepth(1), 2u * 1u * p);
}

// ------------------------------------------ legacy closed-form reference --

// The pre-generalization HierarchicalNetworkModel cost formulas, kept
// verbatim as the independent oracle for the depth-2 parity property.
namespace legacy {

double MaxLinkFactor(const std::vector<double>* factors, int begin,
                     int size) {
  if (factors == nullptr) {
    return 1.0;
  }
  double max_factor = 1.0;
  for (int i = begin; i < begin + size; ++i) {
    max_factor = std::max(max_factor, (*factors)[static_cast<size_t>(i)]);
  }
  return max_factor;
}

struct IntraPhase {
  double seconds = 0.0;
  double max_leader_factor = 1.0;
};

IntraPhase SlowestIntraPhase(const HierarchicalNetworkModel& h,
                             double payload_bytes, int num_workers,
                             const std::vector<double>* factors) {
  const int clusters = std::min(h.num_clusters, num_workers);
  IntraPhase phase;
  int begin = 0;
  for (int c = 0; c < clusters; ++c) {
    const int size = h.ClusterSize(c, num_workers);
    phase.max_leader_factor = std::max(phase.max_leader_factor,
                                       MaxLinkFactor(factors, begin, 1));
    if (size > 1) {
      const NetworkModel& link = h.IntraModel(c);
      const double factor = MaxLinkFactor(factors, begin, size);
      phase.seconds = std::max(
          phase.seconds,
          link.latency_seconds + static_cast<double>(size - 1) *
                                     payload_bytes /
                                     (link.bandwidth_bytes_per_sec / factor));
    }
    begin += size;
  }
  return phase;
}

HierarchicalNetworkModel::TierCost GroupedAllReduceCost(
    const HierarchicalNetworkModel& h, double payload_bytes, int num_workers,
    AllReduceAlgorithm cross_algorithm,
    const std::vector<double>* factors) {
  HierarchicalNetworkModel::TierCost cost;
  if (num_workers == 1) {
    return cost;
  }
  const int clusters = std::min(h.num_clusters, num_workers);
  const double members = static_cast<double>(num_workers - clusters);
  const size_t member_bytes =
      static_cast<size_t>(std::llround(members * payload_bytes));
  const IntraPhase phase =
      SlowestIntraPhase(h, payload_bytes, num_workers, factors);
  if (phase.seconds > 0.0) {
    cost.intra_seconds += 2.0 * phase.seconds;
    cost.intra_bytes += 2 * member_bytes;
  }
  if (clusters > 1) {
    NetworkModel effective_uplink = h.uplink;
    effective_uplink.bandwidth_bytes_per_sec /= phase.max_leader_factor;
    cost.uplink_seconds += effective_uplink.AllReduceSeconds(
        payload_bytes, clusters, cross_algorithm);
    cost.uplink_bytes += static_cast<size_t>(
        std::llround(NetworkModel::AllReduceTotalBytesFromSum(
            static_cast<double>(clusters) * payload_bytes, clusters,
            cross_algorithm)));
  }
  return cost;
}

HierarchicalNetworkModel::TierCost BroadcastCost(
    const HierarchicalNetworkModel& h, size_t payload_bytes, int num_workers,
    const std::vector<double>* factors) {
  HierarchicalNetworkModel::TierCost cost;
  if (num_workers == 1) {
    return cost;
  }
  const int clusters = std::min(h.num_clusters, num_workers);
  const IntraPhase phase = SlowestIntraPhase(
      h, static_cast<double>(payload_bytes), num_workers, factors);
  if (clusters > 1) {
    cost.uplink_seconds += h.uplink.latency_seconds +
                           static_cast<double>(clusters - 1) *
                               static_cast<double>(payload_bytes) /
                               (h.uplink.bandwidth_bytes_per_sec /
                                phase.max_leader_factor);
    cost.uplink_bytes += static_cast<size_t>(clusters - 1) * payload_bytes;
  }
  if (phase.seconds > 0.0) {
    cost.intra_seconds += phase.seconds;
    cost.intra_bytes +=
        static_cast<size_t>(num_workers - clusters) * payload_bytes;
  }
  return cost;
}

}  // namespace legacy

HierarchicalNetworkModel RandomHierarchy(Rng& rng) {
  HierarchicalNetworkModel h;
  h.name = "random2tier";
  h.num_clusters = 1 + static_cast<int>(rng.NextBounded(5));
  h.intra = RandomLink(rng);
  h.uplink = RandomLink(rng);
  if (rng.NextBernoulli(0.5)) {
    for (int c = 0; c < h.num_clusters; ++c) {
      h.cluster_intra.push_back(RandomLink(rng));
    }
  }
  return h;
}

// Depth-2 parity to the last byte and the last double bit, randomized over
// cluster counts, heterogeneous intra links, straggler factors, fractional
// (compressed-wire-size) payloads, algorithms, and worker counts.
TEST(TopologyTreeTest, Depth2TreeMatchesLegacyHierarchicalFormulasExactly) {
  Rng rng(7);
  const AllReduceAlgorithm algorithms[] = {
      AllReduceAlgorithm::kFlat, AllReduceAlgorithm::kRing,
      AllReduceAlgorithm::kRecursiveHalving};
  for (int trial = 0; trial < 200; ++trial) {
    const HierarchicalNetworkModel h = RandomHierarchy(rng);
    const int workers =
        h.num_clusters + static_cast<int>(rng.NextBounded(12));
    const double payload =
        rng.NextBernoulli(0.5)
            ? static_cast<double>(4 * (1 + rng.NextBounded(1 << 20)))
            : 1e6 * rng.NextDouble() + 0.37;  // fractional wire size
    const AllReduceAlgorithm algorithm = algorithms[rng.NextBounded(3)];
    std::vector<double> factors;
    const std::vector<double>* factors_ptr = nullptr;
    if (rng.NextBernoulli(0.5)) {
      factors = RandomFactors(rng, workers);
      factors_ptr = &factors;
    }
    SCOPED_TRACE(::testing::Message()
                 << "trial " << trial << " clusters " << h.num_clusters
                 << " workers " << workers << " payload " << payload);

    const auto expected = legacy::GroupedAllReduceCost(
        h, payload, workers, algorithm, factors_ptr);
    const auto got =
        h.GroupedAllReduceCost(payload, workers, algorithm, factors_ptr);
    EXPECT_EQ(expected.intra_seconds, got.intra_seconds);
    EXPECT_EQ(expected.uplink_seconds, got.uplink_seconds);
    EXPECT_EQ(expected.intra_bytes, got.intra_bytes);
    EXPECT_EQ(expected.uplink_bytes, got.uplink_bytes);

    const size_t bcast_payload = static_cast<size_t>(payload);
    const auto expected_bcast =
        legacy::BroadcastCost(h, bcast_payload, workers, factors_ptr);
    const auto got_bcast =
        h.BroadcastCost(bcast_payload, workers, factors_ptr);
    EXPECT_EQ(expected_bcast.intra_seconds, got_bcast.intra_seconds);
    EXPECT_EQ(expected_bcast.uplink_seconds, got_bcast.uplink_seconds);
    EXPECT_EQ(expected_bcast.intra_bytes, got_bcast.intra_bytes);
    EXPECT_EQ(expected_bcast.uplink_bytes, got_bcast.uplink_bytes);
  }
}

// The same parity at the SimNetwork level: a network configured with the
// two-tier hierarchy and one configured with its depth-2 tree account
// identical stats for a mixed collective sequence.
TEST(TopologyTreeTest, HierarchicalNetworkEqualsDepth2TreeNetwork) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const HierarchicalNetworkModel h = RandomHierarchy(rng);
    const int workers =
        h.num_clusters + static_cast<int>(rng.NextBounded(9));
    const size_t n = 1 + rng.NextBounded(5000);
    std::vector<double> factors = RandomFactors(rng, workers);
    auto run = [&](SimNetwork network) {
      network.SetWorkerLinkFactors(factors);
      auto buffers = RandomBuffers(workers, n, 300 + trial);
      auto pointers = Pointers(buffers);
      network.AllReduceAverage(pointers, n, TrafficClass::kModelSync);
      network.Broadcast(pointers, n, 0, TrafficClass::kModelSync);
      network.PointToPoint(n, TrafficClass::kLocalState,
                           static_cast<int>(rng.NextBounded(workers)));
      return network.stats();
    };
    Rng fork = rng;  // both runs draw the same p2p worker
    const CommStats a = run(SimNetwork(workers, h, AllReduceAlgorithm::kRing));
    rng = fork;
    const CommStats b = run(SimNetwork(
        workers, TopologyTree::FromHierarchy(h), AllReduceAlgorithm::kRing));
    SCOPED_TRACE(::testing::Message() << "trial " << trial);
    EXPECT_EQ(a.bytes_total, b.bytes_total);
    EXPECT_EQ(a.comm_seconds, b.comm_seconds);
    EXPECT_EQ(a.seconds_intra, b.seconds_intra);
    EXPECT_EQ(a.seconds_uplink, b.seconds_uplink);
    EXPECT_EQ(a.BytesAtDepth(0), b.BytesAtDepth(0));
    EXPECT_EQ(a.BytesAtDepth(1), b.BytesAtDepth(1));
  }
}

// --------------------------------------------------------- degeneracy ----

TEST(TopologyTreeTest, SingleNodeTreeMatchesFlatNetworkExactly) {
  Rng rng(55);
  const AllReduceAlgorithm algorithms[] = {
      AllReduceAlgorithm::kFlat, AllReduceAlgorithm::kRing,
      AllReduceAlgorithm::kRecursiveHalving};
  for (int trial = 0; trial < 30; ++trial) {
    const NetworkModel model = RandomLink(rng);
    const int workers = 1 + static_cast<int>(rng.NextBounded(10));
    const size_t n = 1 + rng.NextBounded(4096);
    const AllReduceAlgorithm algorithm = algorithms[rng.NextBounded(3)];
    const bool with_factors = rng.NextBernoulli(0.5);
    std::vector<double> factors =
        with_factors ? RandomFactors(rng, workers) : std::vector<double>();
    const int p2p_worker = static_cast<int>(rng.NextBounded(workers));
    auto run = [&](SimNetwork network) {
      if (with_factors) {
        network.SetWorkerLinkFactors(factors);
      }
      auto buffers = RandomBuffers(workers, n, 800 + trial);
      auto pointers = Pointers(buffers);
      network.AllReduceAverage(pointers, n, TrafficClass::kModelSync);
      network.Broadcast(pointers, n, 0, TrafficClass::kLocalState);
      network.PointToPoint(n, TrafficClass::kLocalState, p2p_worker);
      struct Result {
        CommStats stats;
        double model_sync_seconds;
      };
      return Result{network.stats(),
                    network.ModelSyncSeconds(n * sizeof(float))};
    };
    const auto flat = run(SimNetwork(workers, model, algorithm));
    const auto tree =
        run(SimNetwork(workers, TopologyTree::SingleTier(model), algorithm));
    SCOPED_TRACE(::testing::Message()
                 << "trial " << trial << " workers " << workers
                 << " algorithm " << AllReduceAlgorithmName(algorithm));
    EXPECT_EQ(flat.stats.bytes_total, tree.stats.bytes_total);
    EXPECT_EQ(flat.stats.comm_seconds, tree.stats.comm_seconds);
    EXPECT_EQ(flat.stats.seconds_uplink, tree.stats.seconds_uplink);
    EXPECT_EQ(flat.stats.seconds_intra, tree.stats.seconds_intra);
    EXPECT_EQ(flat.stats.seconds_local_state, tree.stats.seconds_local_state);
    EXPECT_EQ(flat.stats.seconds_model_sync, tree.stats.seconds_model_sync);
    EXPECT_EQ(flat.stats.BytesAtDepth(0), tree.stats.BytesAtDepth(0));
    EXPECT_EQ(flat.stats.SecondsAtDepth(0), tree.stats.SecondsAtDepth(0));
    EXPECT_EQ(flat.model_sync_seconds, tree.model_sync_seconds);
  }
}

// ---------------------------------------------------- three-tier golden --

TEST(TopologyTreeTest, ThreeTierGroupedAllReduceGolden) {
  // Hand-computed closed form for a fixed 3-tier tree: root (1e-2 s,
  // 1e8 B/s) over 2 sites (1e-3 s, 1e9 B/s) over 2 device groups each
  // (1e-4 s, 2e9 B/s); K = 8 workers -> groups of 2.
  TopologyNode root;
  root.link.bandwidth_bytes_per_sec = 1e8;
  root.link.latency_seconds = 1e-2;
  for (int s = 0; s < 2; ++s) {
    TopologyNode site;
    site.link.bandwidth_bytes_per_sec = 1e9;
    site.link.latency_seconds = 1e-3;
    for (int g = 0; g < 2; ++g) {
      TopologyNode devices;
      devices.link.bandwidth_bytes_per_sec = 2e9;
      devices.link.latency_seconds = 1e-4;
      site.children.push_back(devices);
    }
    root.children.push_back(site);
  }
  TopologyTree tree(root, "golden3tier");
  ASSERT_EQ(tree.depth(), 3);
  ASSERT_EQ(tree.num_leaf_groups(), 4);

  const size_t n = 1024;
  const double p = static_cast<double>(n * sizeof(float));
  const TreeCost cost =
      tree.GroupedAllReduceCost(p, 8, AllReduceAlgorithm::kFlat);
  // Device tier: each group gathers 1 member payload; 4 transfers per
  // direction; phases are symmetric up/down.
  const double device_phase = 1e-4 + p / 2e9;
  EXPECT_DOUBLE_EQ(cost.SecondsAt(2), 2.0 * device_phase);
  EXPECT_EQ(cost.BytesAt(2), 2u * 4u * static_cast<uint64_t>(p));
  // Site tier: each site gathers 1 child-representative payload.
  const double site_phase = 1e-3 + p / 1e9;
  EXPECT_DOUBLE_EQ(cost.SecondsAt(1), 2.0 * site_phase);
  EXPECT_EQ(cost.BytesAt(1), 2u * 2u * static_cast<uint64_t>(p));
  // Root tier: flat AllReduce of the 2 site representatives.
  EXPECT_DOUBLE_EQ(cost.SecondsAt(0), 1e-2 + 2.0 * p / 1e8);
  EXPECT_EQ(cost.BytesAt(0), 2u * static_cast<uint64_t>(p));

  // The SimNetwork charge splits match: depth 0 is the uplink, the rest
  // intra, and everything sums to comm_seconds.
  SimNetwork network(8, tree, AllReduceAlgorithm::kFlat);
  auto buffers = RandomBuffers(8, n, 17);
  auto pointers = Pointers(buffers);
  const double predicted = network.ModelSyncSeconds(n * sizeof(float));
  network.AllReduceAverage(pointers, n, TrafficClass::kModelSync);
  const CommStats& stats = network.stats();
  EXPECT_DOUBLE_EQ(stats.seconds_uplink, cost.SecondsAt(0));
  EXPECT_DOUBLE_EQ(stats.seconds_intra,
                   cost.SecondsAt(1) + cost.SecondsAt(2));
  EXPECT_DOUBLE_EQ(stats.comm_seconds, predicted);
  EXPECT_NEAR(stats.SecondsAtDepth(0) + stats.SecondsAtDepth(1) +
                  stats.SecondsAtDepth(2),
              stats.comm_seconds, 1e-15);
  EXPECT_EQ(stats.bytes_total,
            cost.BytesAt(0) + cost.BytesAt(1) + cost.BytesAt(2));

  // Point-to-point crosses all three tiers: one hop per depth.
  network.ResetStats();
  network.PointToPoint(100, TrafficClass::kLocalState, /*worker=*/5);
  const size_t p2p = 400;
  EXPECT_EQ(network.stats().bytes_total, 3u * p2p);
  EXPECT_DOUBLE_EQ(network.stats().SecondsAtDepth(2),
                   1e-4 + static_cast<double>(p2p) / 2e9);
  EXPECT_DOUBLE_EQ(network.stats().SecondsAtDepth(1),
                   1e-3 + static_cast<double>(p2p) / 1e9);
  EXPECT_DOUBLE_EQ(network.stats().SecondsAtDepth(0),
                   1e-2 + static_cast<double>(p2p) / 1e8);
}

TEST(TopologyTreeTest, PerChildLinkFactorsSlowTheParentTier) {
  // Two sites; site 1's edge into the root is 5x slow. The root gather is
  // paced by that child, the site-internal phases are not.
  TopologyNode root;
  root.link.bandwidth_bytes_per_sec = 1e8;
  root.link.latency_seconds = 1e-2;
  for (int s = 0; s < 2; ++s) {
    TopologyNode site;
    site.link.bandwidth_bytes_per_sec = 1e9;
    site.link.latency_seconds = 1e-3;
    root.children.push_back(site);
  }
  root.child_link_factors = {1.0, 5.0};
  TopologyTree tree(root, "slowchild");
  const double p = 1 << 20;
  const TreeCost cost =
      tree.GroupedAllReduceCost(p, 4, AllReduceAlgorithm::kFlat);
  // Root AllReduce at bandwidth / 5.
  EXPECT_DOUBLE_EQ(cost.SecondsAt(0), 1e-2 + 2.0 * p / (1e8 / 5.0));
  // Site gathers keep their own full links.
  EXPECT_DOUBLE_EQ(cost.SecondsAt(1), 2.0 * (1e-3 + p / 1e9));
}

// ------------------------------------------------------- worker layout ----

TEST(TopologyTreeTest, WorkerLayoutIsContiguousBalancedAndConsistent) {
  Rng rng(31);
  for (int trial = 0; trial < 40; ++trial) {
    TopologyTree tree = RandomTree(rng);
    const int groups = tree.num_leaf_groups();
    const int workers = 1 + static_cast<int>(rng.NextBounded(
                                static_cast<uint64_t>(3 * groups + 4)));
    int covered = 0;
    for (int g = 0; g < groups; ++g) {
      ASSERT_EQ(tree.GroupBegin(g, workers), covered);
      covered += tree.GroupSize(g, workers);
    }
    ASSERT_EQ(covered, workers);
    for (int w = 0; w < workers; ++w) {
      const int g = tree.LeafGroupOfWorker(w, workers);
      ASSERT_GE(w, tree.GroupBegin(g, workers));
      ASSERT_LT(w, tree.GroupBegin(g, workers) + tree.GroupSize(g, workers));
    }
    // Sizes differ by at most one and are non-increasing (balanced fill).
    for (int g = 1; g < groups; ++g) {
      ASSERT_LE(tree.GroupSize(g, workers), tree.GroupSize(g - 1, workers));
      ASSERT_GE(tree.GroupSize(g, workers),
                tree.GroupSize(g - 1, workers) - 1);
    }
  }
}

TEST(TopologyTreeTest, Depth2LayoutMatchesHierarchicalClusterBlocks) {
  auto h = HierarchicalNetworkModel::EdgeCloud(3);
  TopologyTree tree = TopologyTree::FromHierarchy(h);
  ASSERT_EQ(tree.depth(), 2);
  ASSERT_EQ(tree.num_leaf_groups(), 3);
  for (int workers : {3, 4, 7, 8, 11}) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(tree.GroupSize(c, workers), h.ClusterSize(c, workers))
          << "workers " << workers << " cluster " << c;
    }
    for (int w = 0; w < workers; ++w) {
      EXPECT_EQ(tree.LeafGroupOfWorker(w, workers),
                h.ClusterOfWorker(w, workers))
          << "workers " << workers << " worker " << w;
    }
  }
}

// --------------------------------- bit-determinism across thread counts --

// FNV-1a over the raw float bytes of every worker buffer.
uint64_t HashBuffers(const std::vector<std::vector<float>>& buffers) {
  uint64_t hash = 1469598103934665603ull;
  for (const auto& buffer : buffers) {
    const unsigned char* bytes =
        reinterpret_cast<const unsigned char*>(buffer.data());
    for (size_t i = 0; i < buffer.size() * sizeof(float); ++i) {
      hash ^= bytes[i];
      hash *= 1099511628211ull;
    }
  }
  return hash;
}

// The deterministic workload whose result hash must be identical for any
// pool size: a large tree AllReduce + a subtree AllReduce spanning several
// reduction-engine chunks.
uint64_t ComputeThreadSweepHash() {
  TopologyTree tree = TopologyTree::DeviceSiteCloud(2, 2);
  const int workers = 8;
  const size_t n = (size_t{1} << 17) + 311;
  auto buffers = RandomBuffers(workers, n, 4242);
  auto pointers = Pointers(buffers);
  SimNetwork network(workers, tree, AllReduceAlgorithm::kRing);
  network.AllReduceAverage(pointers, n, TrafficClass::kModelSync);
  std::vector<float*> site0(pointers.begin(), pointers.begin() + 4);
  network.SubtreeAllReduceAverage(1, site0, n, TrafficClass::kModelSync);
  return HashBuffers(buffers);
}

// Prints the workload hash; also a plain determinism check within one
// process. The sweep test below re-runs this test in child processes with
// FEDRA_NUM_THREADS pinned.
TEST(TopologyTreeThreadSweepTest, HashModePrintsWorkloadHash) {
  const uint64_t hash = ComputeThreadSweepHash();
  EXPECT_EQ(hash, ComputeThreadSweepHash());
  std::printf("TREEHASH %016llx\n",
              static_cast<unsigned long long>(hash));
}

TEST(TopologyTreeThreadSweepTest, BitIdenticalAcrossThreadCounts) {
  if (std::getenv("FEDRA_TREE_SWEEP_CHILD") != nullptr) {
    GTEST_SKIP() << "child process of the sweep";
  }
  // The global pool is sized once per process, so the sweep re-executes
  // this binary with FEDRA_NUM_THREADS pinned and compares the workload
  // hashes printed by HashModePrintsWorkloadHash.
  char exe[4096];
  const ssize_t len =
      readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (len <= 0) {
    GTEST_SKIP() << "cannot resolve /proc/self/exe on this platform";
  }
  exe[len] = '\0';
  auto hash_with_threads = [&](int threads) {
    std::string command =
        "FEDRA_TREE_SWEEP_CHILD=1 FEDRA_NUM_THREADS=" +
        std::to_string(threads) + " '" + std::string(exe) +
        "' --gtest_filter='TopologyTreeThreadSweepTest."
        "HashModePrintsWorkloadHash' 2>/dev/null";
    FILE* pipe = popen(command.c_str(), "r");
    if (pipe == nullptr) {
      return std::string("popen-failed");
    }
    std::string hash;
    char line[256];
    while (std::fgets(line, sizeof(line), pipe) != nullptr) {
      if (std::strncmp(line, "TREEHASH ", 9) == 0) {
        hash.assign(line + 9);
        while (!hash.empty() && (hash.back() == '\n' || hash.back() == '\r')) {
          hash.pop_back();
        }
      }
    }
    const int status = pclose(pipe);
    if (status != 0 || hash.empty()) {
      return std::string("child-failed");
    }
    return hash;
  };
  const std::string h1 = hash_with_threads(1);
  const std::string h4 = hash_with_threads(4);
  const std::string h16 = hash_with_threads(16);
  ASSERT_NE(h1, "popen-failed");
  ASSERT_NE(h1, "child-failed");
  EXPECT_EQ(h1, h4);
  EXPECT_EQ(h1, h16);
  // And the in-process result (whatever FEDRA_NUM_THREADS this run uses)
  // agrees with the sweep.
  char expected[32];
  std::snprintf(expected, sizeof(expected), "%016llx",
                static_cast<unsigned long long>(ComputeThreadSweepHash()));
  EXPECT_EQ(h1, expected);
}

// ----------------------------------------------------------- validation --

TEST(TopologyTreeTest, ValidateRejectsBadLinksAndFactors) {
  TopologyNode root;
  root.link.bandwidth_bytes_per_sec = 0.0;
  EXPECT_FALSE(TopologyTree(root).Validate().ok());
  root.link.bandwidth_bytes_per_sec = 1e9;
  root.link.latency_seconds = -1.0;
  EXPECT_FALSE(TopologyTree(root).Validate().ok());
  root.link.latency_seconds = 1e-3;
  TopologyNode child;
  child.link = root.link;
  root.children.push_back(child);
  root.child_link_factors = {0.5};  // speedups are not allowed
  EXPECT_FALSE(TopologyTree(root).Validate().ok());
  root.child_link_factors = {2.0};
  EXPECT_TRUE(TopologyTree(root).Validate().ok());
  EXPECT_FALSE(TopologyTree().enabled());
}

TEST(TopologyTreeTest, PresetShapes) {
  const TopologyTree single = TopologyTree::SingleTier(NetworkModel::Hpc());
  EXPECT_EQ(single.depth(), 1);
  EXPECT_EQ(single.num_leaf_groups(), 1);
  const TopologyTree dsc = TopologyTree::DeviceSiteCloud(3, 2);
  EXPECT_EQ(dsc.depth(), 3);
  EXPECT_EQ(dsc.num_leaf_groups(), 6);
  EXPECT_EQ(dsc.num_nodes(), 1 + 3 + 6);
  const TopologyTree two =
      TopologyTree::FromHierarchy(HierarchicalNetworkModel::EdgeCloud(4));
  EXPECT_EQ(two.depth(), 2);
  EXPECT_EQ(two.num_leaf_groups(), 4);
}

}  // namespace
}  // namespace fedra
