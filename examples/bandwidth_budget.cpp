// Bandwidth-budgeted training (the paper's §5 future-work extension,
// implemented): a federated deployment must keep average consumption under
// a contract — say, a metered satellite uplink. The ThetaController raises
// or lowers the variance threshold online so FDA tracks the budget instead
// of a fixed Theta guess.

#include <cstdio>
#include <memory>

#include "core/fda_policy.h"
#include "core/theta_controller.h"
#include "core/trainer.h"
#include "data/synth.h"
#include "nn/zoo.h"
#include "util/string_util.h"

using namespace fedra;

int main() {
  auto data = GenerateSynthImages([] {
    SynthImageConfig config = MnistLikeConfig();
    config.num_train = 2048;
    config.num_test = 512;
    return config;
  }());
  FEDRA_CHECK_OK(data.status());

  ModelFactory factory = [] { return zoo::LeNet5(1, 16, 10); };
  const size_t dim = factory()->num_params();

  TrainerConfig config;
  config.num_workers = 6;
  config.batch_size = 16;
  config.local_optimizer = OptimizerConfig::Adam(0.002f);
  config.accuracy_target = 2.0;  // train the full horizon
  config.max_steps = 600;
  config.eval_every_steps = 50;

  // Contract: at most ~one full-model exchange per 40 steps on average.
  const double budget_bytes_per_step =
      static_cast<double>(dim * sizeof(float) * config.num_workers) / 40.0;
  std::printf("uplink contract: %.1f KB per training step (d = %zu, K = %d)\n",
              budget_bytes_per_step / 1024.0, dim, config.num_workers);

  DistributedTrainer trainer(factory, data->train, data->test, config);
  auto monitor = MakeVarianceMonitor(
      [] {
        MonitorConfig c;
        c.kind = MonitorKind::kLinear;
        return c;
      }(),
      dim);
  FEDRA_CHECK_OK(monitor.status());
  // Deliberately poor initial guess: Theta far too small.
  FdaSyncPolicy policy(std::move(monitor).value(), /*theta=*/0.01);
  ThetaControllerConfig controller_config;
  controller_config.target_bytes_per_step = budget_bytes_per_step;
  controller_config.adjust_every_steps = 60;
  controller_config.gain = 0.7;
  auto controller = std::make_unique<ThetaController>(controller_config,
                                                      policy.theta());
  ThetaController* trace = controller.get();
  policy.SetThetaController(std::move(controller));

  auto result = trainer.Run(&policy);
  FEDRA_CHECK_OK(result.status());

  std::printf("\n%-8s %-18s %-10s\n", "step", "observed bytes/step",
              "theta after");
  for (const auto& adjustment : trace->adjustments()) {
    std::printf("%-8zu %-18.0f %-10.4g %s\n", adjustment.step,
                adjustment.observed_bytes_per_step, adjustment.theta_after,
                adjustment.observed_bytes_per_step > budget_bytes_per_step
                    ? "(over budget -> raise theta)"
                    : "");
  }
  std::printf("\nfinal accuracy %.1f%%, total communication %s, "
              "final theta %.4g\n",
              100.0 * result->final_test_accuracy,
              HumanBytes(static_cast<double>(result->comm.bytes_total))
                  .c_str(),
              policy.theta());
  return 0;
}
