// Quickstart: train a small CNN across a simulated federated cluster with
// SketchFDA and compare the communication bill against the Synchronous
// (BSP) baseline.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/algorithms.h"
#include "core/trainer.h"
#include "data/synth.h"
#include "nn/zoo.h"
#include "util/string_util.h"

using namespace fedra;

int main() {
  // 1. A learning task. (Outside simulations you would load your own
  //    Dataset; here we generate the MNIST-like synthetic task.)
  SynthImageConfig data_config = MnistLikeConfig();
  data_config.num_train = 2048;
  data_config.num_test = 512;
  auto data = GenerateSynthImages(data_config);
  FEDRA_CHECK_OK(data.status());

  // 2. A model architecture. Every worker builds one replica from the
  //    factory; fedra's Model exposes the flat parameter vector FDA needs.
  ModelFactory factory = [] { return zoo::LeNet5(1, 16, 10); };
  std::printf("model: LeNet-5 with d = %zu parameters\n",
              factory()->num_params());

  // 3. Cluster + training configuration (paper notation: K, b, Theta).
  TrainerConfig config;
  config.num_workers = 6;                              // K
  config.batch_size = 8;                               // b
  config.local_optimizer = OptimizerConfig::Adam(0.002f);
  config.partition = PartitionConfig::Iid();
  config.accuracy_target = 0.95;
  config.max_steps = 1000;
  config.eval_every_steps = 25;

  // 4. Train with SketchFDA, then with the Synchronous baseline.
  for (auto algo : {AlgorithmConfig::SketchFda(/*theta=*/2.0),
                    AlgorithmConfig::Synchronous()}) {
    DistributedTrainer trainer(factory, data->train, data->test, config);
    auto policy = MakeSyncPolicy(algo, trainer.model_dim());
    FEDRA_CHECK_OK(policy.status());
    auto result = trainer.Run(policy->get());
    FEDRA_CHECK_OK(result.status());
    std::printf(
        "\n%s\n  reached %.1f%% test accuracy in %zu in-parallel steps\n"
        "  model syncs: %llu\n  communication: %s (state traffic %s, "
        "model traffic %s)\n",
        result->algorithm.c_str(), 100.0 * result->final_test_accuracy,
        result->total_steps,
        static_cast<unsigned long long>(result->total_syncs),
        HumanBytes(static_cast<double>(result->comm.bytes_total)).c_str(),
        HumanBytes(static_cast<double>(result->comm.bytes_local_state))
            .c_str(),
        HumanBytes(static_cast<double>(result->comm.bytes_model_sync))
            .c_str());
  }
  std::printf(
      "\nSketchFDA transmits a ~%zu-float state per step and synchronizes\n"
      "the full model only when the variance estimate H(S) exceeds Theta —\n"
      "that is the entire difference, and the entire saving.\n",
      static_cast<size_t>(5 * 250 + 1));
  return 0;
}
