// Compressed fleet FDA: the WireCodec stage pipeline at population scale.
// The same churned 100,000-client fleet as fleet_fda — 64 resident cohort
// slots, availability-weighted rotation, Markov churn — but every model
// synchronization ships through a top-k -> 8-bit-quantize codec with
// per-client error feedback. Departing clients page their EF residual into
// the ClientStateStore next to their drift; arrivals page theirs back in,
// so compression memory survives rotation. The headline, CHECKed below:
// the codec cuts uplink model-sync bytes by >= 4x per synchronization while
// the fleet still reaches the same accuracy target as the uncompressed run.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/compressed_fleet_fda
//
// FEDRA_FLEET_SMOKE=1 shrinks the run for CI.

#include <cstdio>
#include <cstdlib>

#include "core/algorithms.h"
#include "core/compression.h"
#include "core/trainer.h"
#include "data/synth.h"
#include "nn/zoo.h"
#include "util/string_util.h"

using namespace fedra;

namespace {

/// Uplink model-sync bytes: the sync collectives plus retries, minus the
/// downlink model downloads (rotation check-ins, crash catch-ups) that a
/// sync compressor does not touch.
double UplinkSyncBytes(const TrainResult& result) {
  return static_cast<double>(result.comm.bytes_model_sync -
                             result.comm.bytes_model_downlink);
}

TrainResult RunOne(const char* tag, ModelFactory factory,
                   const SynthImageData& data, const TrainerConfig& config,
                   SyncPolicy* policy) {
  DistributedTrainer trainer(factory, data.train, data.test, config);
  auto result = trainer.Run(policy);
  FEDRA_CHECK_OK(result.status());
  const double per_sync =
      result->total_syncs > 0
          ? UplinkSyncBytes(*result) /
                static_cast<double>(result->total_syncs)
          : 0.0;
  std::printf(
      "%-22s acc %5.1f%%  syncs %4llu  uplink-bytes/sync %s  comm %s\n",
      tag, 100.0 * result->final_test_accuracy,
      static_cast<unsigned long long>(result->total_syncs),
      HumanBytes(per_sync).c_str(),
      HumanBytes(static_cast<double>(result->comm.bytes_total)).c_str());
  return std::move(result).value();
}

}  // namespace

int main() {
  const bool smoke = std::getenv("FEDRA_FLEET_SMOKE") != nullptr;

  SynthImageConfig data_config = MnistLikeConfig();
  data_config.num_train = smoke ? 512 : 2048;
  data_config.num_test = smoke ? 256 : 512;
  data_config.image_size = 16;
  auto data = GenerateSynthImages(data_config);
  FEDRA_CHECK_OK(data.status());

  ModelFactory factory = [] { return zoo::Mlp(16 * 16, {16}, 10); };

  TrainerConfig config;
  config.num_workers = 64;                     // C resident slots
  config.population = smoke ? 10000 : 100000;  // N clients
  config.cohort_size = 64;
  config.cohort_steps = 20;
  config.cohort_schedule = CohortScheduleKind::kAvailability;
  config.batch_size = 8;
  config.local_optimizer = OptimizerConfig::Sgd(0.05f);
  config.partition = PartitionConfig::SortedFraction(0.5);
  config.network = NetworkModel::Federated();
  config.max_steps = smoke ? 60 : 300;
  config.eval_every_steps = smoke ? 30 : 50;
  config.eval_subset = 256;
  config.seed = 23;
  // 20% of the population down at any moment; dropped uploads leave the
  // client's error-feedback residual untouched.
  config.faults = FaultConfig::Churn(10.0, 2.5);

  const double theta = 0.15;
  const size_t dim = factory()->num_params();
  std::printf(
      "population N = %zu, cohort C = %d, d = %zu: raw sync payload %s,\n"
      "top-5%% + q8 wire payload %s per client.\n\n",
      config.population, config.num_workers, dim,
      HumanBytes(static_cast<double>(dim * sizeof(float))).c_str(),
      HumanBytes(static_cast<double>(
                     SyncCompressor(CompressionConfig::TopKQuantize(0.05, 8),
                                    dim, 1)
                         .WireBytes(dim)))
          .c_str());

  // 1. The uncompressed baseline fleet.
  FEDRA_CHECK_OK(config.Validate());
  auto plain_policy = MakeSyncPolicy(AlgorithmConfig::LinearFda(theta), dim);
  FEDRA_CHECK_OK(plain_policy.status());
  const TrainResult plain =
      RunOne("Fleet FDA (raw)", factory, *data, config, plain_policy->get());

  // 2. The same fleet with the flagship codec stack: top-5% mask, 8-bit
  //    quantization, per-client error feedback paged through the store.
  config.sync_compression = CompressionConfig::TopKQuantize(0.05, 8);
  FEDRA_CHECK_OK(config.Validate());
  auto coded_policy = MakeSyncPolicy(AlgorithmConfig::LinearFda(theta), dim);
  FEDRA_CHECK_OK(coded_policy.status());
  const TrainResult coded = RunOne("Fleet FDA (top5%+q8)", factory, *data,
                                   config, coded_policy->get());

  // The headline, enforced:
  // ...the compressed fleet reaches the same accuracy target as the raw
  // one (the CI smoke run stops at a fifth of the steps, lower bar)...
  const double target = smoke ? 0.35 : 0.55;
  FEDRA_CHECK_GT(plain.final_test_accuracy, target);
  FEDRA_CHECK_GT(coded.final_test_accuracy, target)
      << "compressed fleet FDA missed the accuracy target";
  // ...both schedules actually synchronized and rotated clients through
  // the paged store...
  FEDRA_CHECK_GT(plain.total_syncs, 0u);
  FEDRA_CHECK_GT(coded.total_syncs, 0u);
  FEDRA_CHECK_GT(coded.comm.check_in_syncs, 0u);
  // ...and each compressed synchronization moves >= 4x fewer uplink bytes.
  const double plain_per_sync =
      UplinkSyncBytes(plain) / static_cast<double>(plain.total_syncs);
  const double coded_per_sync =
      UplinkSyncBytes(coded) / static_cast<double>(coded.total_syncs);
  FEDRA_CHECK_GT(plain_per_sync, 4.0 * coded_per_sync)
      << "codec pipeline delivered less than a 4x uplink reduction";

  std::printf(
      "\nThe codec cut uplink model-sync traffic %.1fx per synchronization\n"
      "(%s -> %s) at matched accuracy (%.1f%% vs %.1f%%), with EF residuals\n"
      "riding the client pages through %llu cohort check-ins.\n",
      plain_per_sync / coded_per_sync, HumanBytes(plain_per_sync).c_str(),
      HumanBytes(coded_per_sync).c_str(), 100.0 * plain.final_test_accuracy,
      100.0 * coded.final_test_accuracy,
      static_cast<unsigned long long>(coded.comm.check_in_syncs));
  return 0;
}
