// Asynchronous FDA on a heterogeneous edge fleet (paper §3.3): a cluster
// where some devices are much slower (older phones, throttled thermal
// envelopes). BSP-style training pays the slowest device's step time at
// every barrier; the coordinator-based asynchronous FDA lets fast devices
// keep training and still triggers variance-based synchronization.

#include <cstdio>

#include "core/algorithms.h"
#include "core/async_fda.h"
#include "core/trainer.h"
#include "data/synth.h"
#include "nn/zoo.h"

using namespace fedra;

int main() {
  auto data = GenerateSynthImages([] {
    SynthImageConfig config = MnistLikeConfig();
    config.num_train = 2048;
    config.num_test = 512;
    return config;
  }());
  FEDRA_CHECK_OK(data.status());
  ModelFactory factory = [] { return zoo::Mlp(16 * 16, {48}, 10); };

  // The edge fleet: median step 20 ms, 30% of devices 8x slower.
  StragglerModel fleet;
  fleet.base_step_seconds = 0.02;
  fleet.lognormal_sigma = 0.25;
  fleet.slow_worker_prob = 0.3;
  fleet.slow_factor = 8.0;

  TrainerConfig config;
  config.num_workers = 6;
  config.batch_size = 16;
  config.local_optimizer = OptimizerConfig::Adam(0.002f);
  config.max_steps = 400;
  config.eval_every_steps = 50;
  config.straggler = fleet;
  config.seed = 7;

  // Synchronous-FDA (BSP barriers) for reference.
  DistributedTrainer bsp_trainer(factory, data->train, data->test, config);
  auto policy = MakeSyncPolicy(AlgorithmConfig::LinearFda(0.4),
                               bsp_trainer.model_dim());
  FEDRA_CHECK_OK(policy.status());
  auto bsp = bsp_trainer.Run(policy->get());
  FEDRA_CHECK_OK(bsp.status());

  // Asynchronous FDA: same Theta, same fleet.
  AsyncFdaConfig async;
  async.theta = 0.4;
  async.monitor.kind = MonitorKind::kLinear;
  async.max_total_worker_steps =
      config.max_steps * static_cast<size_t>(config.num_workers);
  AsyncFdaTrainer async_trainer(factory, data->train, data->test, config,
                                async);
  auto result = async_trainer.Run();
  FEDRA_CHECK_OK(result.status());

  const double bsp_wall = bsp->compute_seconds + bsp->comm.comm_seconds;
  std::printf("BSP FDA   : %zu steps in %.1f simulated s "
              "(%.1f ms/step), accuracy %.1f%%, %llu syncs\n",
              bsp->total_steps, bsp_wall,
              1e3 * bsp_wall / static_cast<double>(bsp->total_steps),
              100.0 * bsp->final_test_accuracy,
              static_cast<unsigned long long>(bsp->total_syncs));
  const double async_per_step =
      result->sim_wall_seconds /
      (static_cast<double>(result->total_worker_steps) /
       config.num_workers);
  std::printf("Async FDA : %zu worker-steps in %.1f simulated s "
              "(%.1f ms/in-parallel step), accuracy %.1f%%, %zu syncs\n",
              result->total_worker_steps, result->sim_wall_seconds,
              1e3 * async_per_step,
              100.0 * result->base.final_test_accuracy, result->sync_count);
  std::printf("\nspeedup from dropping the per-step barrier: %.1fx\n",
              (1e3 * bsp_wall / static_cast<double>(bsp->total_steps)) /
                  (1e3 * async_per_step));
  std::printf("(as §3.3 notes, the win is straggler tolerance, not "
              "bandwidth: local states are tiny either way)\n");
  return 0;
}
