// Churn FDA: the paper's headline robustness claim, measured. Dynamic
// averaging degrades gracefully when the fleet does not cooperate — here
// 20% of the workers are down at any moment (Markov churn, MTTF 10 rounds)
// and 1% of sync contributions are lost in transit. FDA under that fault
// schedule still reaches the accuracy target with a bounded uplink-time
// overhead versus the fault-free run, while a fault-oblivious FedAvg —
// which averages stale, zero-delta contributions from crashed clients as
// if nothing happened — visibly lags at the same step budget.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/churn_fda

#include <cstdio>

#include "core/algorithms.h"
#include "core/fedopt_policy.h"
#include "core/trainer.h"
#include "data/synth.h"
#include "nn/zoo.h"
#include "util/string_util.h"

using namespace fedra;

namespace {

TrainResult RunOne(const char* tag, ModelFactory factory,
                   const SynthImageData& data, const TrainerConfig& config,
                   SyncPolicy* policy) {
  DistributedTrainer trainer(factory, data.train, data.test, config);
  auto result = trainer.Run(policy);
  FEDRA_CHECK_OK(result.status());
  std::printf(
      "%-22s acc %5.1f%%  steps-to-target %4zu  syncs %4llu  skipped %3llu"
      "  rejoins %3llu\n"
      "%-22s uplink %.3fs  retries %llu  dropped %llu  comm %s\n",
      tag, 100.0 * result->final_test_accuracy,
      result->reached_target ? result->steps_to_target : result->total_steps,
      static_cast<unsigned long long>(result->total_syncs),
      static_cast<unsigned long long>(result->skipped_syncs),
      static_cast<unsigned long long>(result->rejoin_count), "",
      result->comm.seconds_uplink,
      static_cast<unsigned long long>(result->comm.retries),
      static_cast<unsigned long long>(result->comm.dropped_messages),
      HumanBytes(static_cast<double>(result->comm.bytes_total)).c_str());
  return std::move(result).value();
}

}  // namespace

int main() {
  SynthImageConfig data_config = MnistLikeConfig();
  data_config.num_train = 2048;
  data_config.num_test = 512;
  data_config.image_size = 16;
  auto data = GenerateSynthImages(data_config);
  FEDRA_CHECK_OK(data.status());

  ModelFactory factory = [] { return zoo::Mlp(16 * 16, {32}, 10); };

  TrainerConfig config;
  config.num_workers = 8;  // K
  config.batch_size = 16;
  config.local_optimizer = OptimizerConfig::Adam(0.002f);
  // Mild heterogeneity: half of each shard is label-sorted, so worker
  // drifts genuinely diverge and averaging quality matters.
  config.partition = PartitionConfig::SortedFraction(0.5);
  config.network = NetworkModel::Federated();
  config.accuracy_target = 0.95;
  config.max_steps = 1500;
  config.eval_every_steps = 50;
  config.seed = 17;

  // The fault schedule: MTTF 10 / MTTR 2.5 rounds => stationary
  // availability 10 / 12.5 = 80% (20% of the fleet down at any time),
  // plus 1% transit loss on every sync contribution.
  FaultConfig faults = FaultConfig::Churn(10.0, 2.5);
  faults.message_loss_prob = 0.01;
  FEDRA_CHECK_OK(faults.Validate());

  const double theta = 0.5;
  std::printf("LinearFDA, K = %d, Theta = %.1f, d = %zu\n\n",
              config.num_workers, theta, factory()->num_params());

  // 1. The fault-free reference.
  auto fda_policy = MakeSyncPolicy(AlgorithmConfig::LinearFda(theta),
                                   factory()->num_params());
  FEDRA_CHECK_OK(fda_policy.status());
  const TrainResult clean =
      RunOne("FDA fault-free", factory, *data, config, fda_policy->get());

  // 2. The same FDA under churn + loss.
  config.faults = faults;
  auto fda_churn_policy = MakeSyncPolicy(AlgorithmConfig::LinearFda(theta),
                                         factory()->num_params());
  FEDRA_CHECK_OK(fda_churn_policy.status());
  const TrainResult churn = RunOne("FDA 20% churn/1% loss", factory, *data,
                                   config, fda_churn_policy->get());

  // 3. The strawman: FedAvg that ignores the participation mask and
  //    averages every worker's (stale) delta as if the fleet were healthy.
  FedOptConfig oblivious = FedOptConfig::FedAvg(/*local_epochs=*/1);
  oblivious.fault_oblivious = true;
  FedOptPolicy fedavg_oblivious(oblivious);
  const TrainResult strawman = RunOne("FedAvg fault-oblivious", factory,
                                      *data, config, &fedavg_oblivious);

  // 4. The same FedAvg, fault-aware: survivors-only averaging.
  FedOptPolicy fedavg_aware(FedOptConfig::FedAvg(/*local_epochs=*/1));
  const TrainResult aware = RunOne("FedAvg fault-aware", factory, *data,
                                   config, &fedavg_aware);

  // The claims, enforced. FDA still gets there under faults...
  FEDRA_CHECK(clean.reached_target);
  FEDRA_CHECK(churn.reached_target)
      << "FDA under churn missed the accuracy target";
  // ...the survivors' extra uplink time (retries, catch-up syncs, extra
  // variance trips) stays bounded...
  FEDRA_CHECK_LT(churn.comm.seconds_uplink,
                 3.0 * clean.comm.seconds_uplink + 1.0)
      << "churn uplink overhead exploded";
  // ...rejoiners actually paid their catch-up downloads, and the fault
  // layer really fired (this is not a fault-free rerun):
  FEDRA_CHECK_GT(churn.rejoin_count, 0u);
  FEDRA_CHECK_EQ(churn.comm.catch_up_syncs, churn.rejoin_count);
  FEDRA_CHECK_GT(churn.comm.retries + churn.comm.dropped_messages, 0u);
  // ...while the fault-oblivious average — diluted every round by the
  // crashed clients' zero deltas — needs more steps to the target than
  // its fault-aware twin, and burns more uplink time than FDA under the
  // same fault schedule.
  const size_t oblivious_steps = strawman.reached_target
                                     ? strawman.steps_to_target
                                     : strawman.total_steps + 1;
  const size_t aware_steps =
      aware.reached_target ? aware.steps_to_target : aware.total_steps + 1;
  FEDRA_CHECK_GT(oblivious_steps, aware_steps)
      << "the oblivious strawman should be slower than survivor-only "
         "averaging";
  FEDRA_CHECK_GT(strawman.comm.bytes_total, churn.comm.bytes_total)
      << "the oblivious strawman should out-communicate FDA";

  std::printf(
      "\nUnder 20%% churn FDA pays %.2fx the fault-free uplink seconds and\n"
      "still clears %.0f%%. The oblivious FedAvg average is diluted by the\n"
      "crashed clients' zero deltas: %zu steps to target vs %zu for\n"
      "survivor-only averaging, at %.2fx FDA's communication volume.\n",
      churn.comm.seconds_uplink /
          (clean.comm.seconds_uplink > 0.0 ? clean.comm.seconds_uplink
                                           : 1.0),
      100.0 * config.accuracy_target, oblivious_steps, aware_steps,
      static_cast<double>(strawman.comm.bytes_total) /
          static_cast<double>(churn.comm.bytes_total));
  return 0;
}
