// Deep-tree FDA: the same training run on a 3-tier device -> site -> cloud
// topology under (a) plain FDA — every synchronization is a full grouped
// collective that crosses the WAN root tier — and (b) the hierarchical FDA
// scheduler, which averages inside the cheapest tier whose drift condition
// trips and escalates upward only when a subtree's aggregated variance
// crosses the tier above. Both runs use the same tree, seed, model, and
// data, so the per-depth CommStats split shows exactly what the
// topology-aware schedule saves: uplink (root-tier) seconds drop because
// cluster-local averaging keeps the drift controlled without paying the
// WAN, at no accuracy cost.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/deep_tree_fda

#include <cstdio>

#include "core/algorithms.h"
#include "core/fda_policy.h"
#include "core/trainer.h"
#include "data/synth.h"
#include "nn/zoo.h"
#include "sim/topology_tree.h"
#include "util/string_util.h"

using namespace fedra;

namespace {

void PrintRun(const char* label, const TrainResult& result,
              const TopologyTree& tree) {
  const CommStats& comm = result.comm;
  std::printf(
      "\n%s [%s]\n"
      "  final test accuracy: %.1f%%  (global syncs: %llu, subtree syncs: "
      "%llu, escalations: %llu)\n"
      "  communication: %s total (state %s, model %s)\n"
      "  comm seconds: %.3fs total\n",
      label, result.algorithm.c_str(), 100.0 * result.final_test_accuracy,
      static_cast<unsigned long long>(result.total_syncs),
      static_cast<unsigned long long>(comm.subtree_sync_count),
      static_cast<unsigned long long>(comm.child_exchange_calls),
      HumanBytes(static_cast<double>(comm.bytes_total)).c_str(),
      HumanBytes(static_cast<double>(comm.bytes_local_state)).c_str(),
      HumanBytes(static_cast<double>(comm.bytes_model_sync)).c_str(),
      comm.comm_seconds);
  static const char* kTierNames[] = {"cloud WAN (root)", "site backbone",
                                     "device LAN"};
  for (int d = 0; d < tree.depth(); ++d) {
    std::printf("    depth %d %-17s %9.3fs  %10s\n", d,
                d < 3 ? kTierNames[d] : "tier",
                comm.SecondsAtDepth(static_cast<size_t>(d)),
                HumanBytes(static_cast<double>(
                               comm.BytesAtDepth(static_cast<size_t>(d))))
                    .c_str());
  }
}

}  // namespace

int main() {
  SynthImageConfig data_config = MnistLikeConfig();
  data_config.num_train = 2048;
  data_config.num_test = 512;
  data_config.image_size = 16;
  auto data = GenerateSynthImages(data_config);
  FEDRA_CHECK_OK(data.status());

  ModelFactory factory = [] { return zoo::Mlp(16 * 16, {32}, 10); };
  const TopologyTree tree = TopologyTree::DeviceSiteCloud(/*sites=*/2,
                                                          /*groups=*/2);
  std::printf("model: MLP with d = %zu parameters\n",
              factory()->num_params());
  std::printf("topology: %s — 8 workers in 4 device groups, 2 sites\n",
              tree.ToString().c_str());

  TrainerConfig config;
  config.num_workers = 8;
  config.batch_size = 16;
  config.local_optimizer = OptimizerConfig::Adam(0.002f);
  config.seed = 17;
  config.max_steps = 400;
  config.eval_every_steps = 50;
  config.eval_subset = 256;
  config.topology = tree;

  // (a) plain FDA over the tree: the variance condition is global-only, so
  // every state AllReduce and every synchronization crosses the WAN root.
  double flat_uplink_seconds = 0.0;
  double flat_accuracy = 0.0;
  {
    DistributedTrainer trainer(factory, data->train, data->test, config);
    auto policy = MakeSyncPolicy(AlgorithmConfig::LinearFda(/*theta=*/1.0),
                                 trainer.model_dim());
    FEDRA_CHECK_OK(policy.status());
    auto result = trainer.Run(policy->get());
    FEDRA_CHECK_OK(result.status());
    PrintRun("flat FDA (global condition only)", *result, tree);
    flat_uplink_seconds = result->comm.SecondsAtDepth(0);
    flat_accuracy = result->final_test_accuracy;
  }

  // (b) hierarchical FDA: device groups trip at theta 0.2, sites at 0.5,
  // and only a root-tier estimate above 1.0 (the same global threshold as
  // the flat run) pays for a WAN synchronization.
  double hier_uplink_seconds = 0.0;
  double hier_accuracy = 0.0;
  {
    DistributedTrainer trainer(factory, data->train, data->test, config);
    HierarchicalFdaConfig policy_config;
    policy_config.monitor.kind = MonitorKind::kLinear;
    policy_config.theta_by_depth = {1.0, 0.5, 0.2};
    auto policy =
        MakeHierarchicalFdaPolicy(policy_config, trainer.model_dim());
    FEDRA_CHECK_OK(policy.status());
    auto result = trainer.Run(policy->get());
    FEDRA_CHECK_OK(result.status());
    PrintRun("hierarchical FDA (tiered conditions)", *result, tree);
    hier_uplink_seconds = result->comm.SecondsAtDepth(0);
    hier_accuracy = result->final_test_accuracy;
  }

  std::printf(
      "\nuplink (root-tier) seconds: flat %.3fs vs hierarchical %.3fs "
      "(%.1fx less)\n"
      "final accuracy: flat %.1f%% vs hierarchical %.1f%%\n",
      flat_uplink_seconds, hier_uplink_seconds,
      hier_uplink_seconds > 0.0 ? flat_uplink_seconds / hier_uplink_seconds
                                : 0.0,
      100.0 * flat_accuracy, 100.0 * hier_accuracy);
  FEDRA_CHECK(hier_uplink_seconds < flat_uplink_seconds)
      << "the hierarchical scheduler must spend strictly fewer uplink "
         "seconds than flat FDA";
  std::printf(
      "\nPlain FDA pays the WAN for every per-step state AllReduce and\n"
      "every synchronization; the hierarchical scheduler keeps both on\n"
      "the device/site tiers until a subtree's aggregated variance proves\n"
      "local averaging can no longer control the drift.\n");
  return 0;
}
