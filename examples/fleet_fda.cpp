// Fleet FDA: cross-device federated learning at population scale. A
// 100,000-client population trains through 64 resident cohort slots: every
// few rounds the coordinator samples a fresh availability-weighted cohort,
// departing clients park their drift in the paged ClientStateStore, and
// arrivals page theirs back in. Under Markov churn (20% of the population
// down at any moment) dynamic averaging still reaches the accuracy target
// while syncing only when the population-corrected variance estimate trips
// — and the whole simulation stays in O(cohort + touched-client drift)
// memory, never O(population x model).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/fleet_fda
//
// FEDRA_FLEET_SMOKE=1 shrinks the run for CI.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/algorithms.h"
#include "core/fedopt_policy.h"
#include "core/trainer.h"
#include "data/synth.h"
#include "nn/zoo.h"
#include "util/string_util.h"

using namespace fedra;

namespace {

/// Steady-state resident set size of this process in bytes (0 off-Linux).
size_t CurrentRssBytes() {
#ifdef __linux__
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) {
    return 0;
  }
  size_t rss_kb = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      rss_kb = std::strtoul(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return rss_kb * 1024;
#else
  return 0;
#endif
}

TrainResult RunOne(const char* tag, ModelFactory factory,
                   const SynthImageData& data, const TrainerConfig& config,
                   SyncPolicy* policy) {
  DistributedTrainer trainer(factory, data.train, data.test, config);
  auto result = trainer.Run(policy);
  FEDRA_CHECK_OK(result.status());
  std::printf(
      "%-18s acc %5.1f%%  syncs %4llu  check-ins %5llu  rejoins %4llu  "
      "comm %s\n",
      tag, 100.0 * result->final_test_accuracy,
      static_cast<unsigned long long>(result->total_syncs),
      static_cast<unsigned long long>(result->comm.check_in_syncs),
      static_cast<unsigned long long>(result->rejoin_count),
      HumanBytes(static_cast<double>(result->comm.bytes_total)).c_str());
  return std::move(result).value();
}

}  // namespace

int main() {
  const bool smoke = std::getenv("FEDRA_FLEET_SMOKE") != nullptr;

  SynthImageConfig data_config = MnistLikeConfig();
  data_config.num_train = smoke ? 512 : 2048;
  data_config.num_test = smoke ? 256 : 512;
  data_config.image_size = 16;
  auto data = GenerateSynthImages(data_config);
  FEDRA_CHECK_OK(data.status());

  ModelFactory factory = [] { return zoo::Mlp(16 * 16, {16}, 10); };

  TrainerConfig config;
  config.num_workers = 64;                   // C resident slots
  config.population = smoke ? 10000 : 100000;  // N clients
  config.cohort_size = 64;
  config.cohort_steps = 20;  // rotate the cohort every 20 rounds
  config.cohort_schedule = CohortScheduleKind::kAvailability;
  config.batch_size = 8;
  // Cross-device clients run plain SGD: stateless optimizers keep the
  // store's pages at one drift row per touched client.
  config.local_optimizer = OptimizerConfig::Sgd(0.05f);
  config.partition = PartitionConfig::SortedFraction(0.5);
  config.network = NetworkModel::Federated();
  config.max_steps = smoke ? 60 : 300;
  config.eval_every_steps = smoke ? 30 : 50;
  config.eval_subset = 256;
  config.seed = 23;

  // 20% of the population is down at any moment (MTTF 10 / MTTR 2.5
  // rounds); the availability-weighted sampler only invites up clients.
  config.faults = FaultConfig::Churn(10.0, 2.5);
  FEDRA_CHECK_OK(config.Validate());

  // Cohort rotation truncates drift (an arrival restarts near the anchor),
  // so the variance plateau sits lower than a resident cohort's; Theta is
  // tuned to that scale.
  const double theta = 0.15;
  const size_t dim = factory()->num_params();
  std::printf(
      "population N = %zu, cohort C = %d, rotate every %d rounds, d = %zu\n"
      "full-population residency would need %.1f GB; the paged store keeps\n"
      "O(cohort + touched drift).\n\n",
      config.population, config.num_workers, config.cohort_steps, dim,
      static_cast<double>(config.population) * dim * sizeof(float) / 1e9);

  // 1. FDA over sampled cohorts: syncs only when the population-corrected
  //    variance estimate trips Theta.
  auto fda_policy = MakeSyncPolicy(AlgorithmConfig::LinearFda(theta), dim);
  FEDRA_CHECK_OK(fda_policy.status());
  const TrainResult fda =
      RunOne("Fleet FDA", factory, *data, config, fda_policy->get());

  // 2. FedAvg on the same rotating fleet: a fixed sync every round pays the
  //    full model collective whether drift warrants it or not.
  FedOptPolicy fedavg(FedOptConfig::FedAvg(/*local_epochs=*/1));
  const TrainResult avg =
      RunOne("Fleet FedAvg", factory, *data, config, &fedavg);

  const double rss_gb = static_cast<double>(CurrentRssBytes()) / 1e9;
  const double full_gb =
      static_cast<double>(config.population) * dim * sizeof(float) / 1e9;

  // The headline, enforced:
  // ...both algorithms actually learn through cohort rotation and churn
  // (the CI smoke run stops at a fifth of the steps, hence the lower bar)...
  FEDRA_CHECK_GT(fda.final_test_accuracy, smoke ? 0.35 : 0.55)
      << "fleet FDA failed to learn through cohort rotation";
  FEDRA_CHECK_GT(avg.final_test_accuracy, smoke ? 0.35 : 0.45);
  // ...the rotations really swapped clients in (billed model downloads)...
  FEDRA_CHECK_GT(fda.comm.check_in_syncs, 0u);
  // ...FDA's variance-triggered schedule out-communicates every-round
  // averaging on the same fleet...
  FEDRA_CHECK_LT(fda.total_syncs, avg.total_syncs);
  FEDRA_CHECK_LT(fda.comm.bytes_total, avg.comm.bytes_total)
      << "FDA should transmit less than every-round FedAvg";
  // ...and the memory contract holds: the process stays far below what
  // materializing every client's model would cost.
  if (CurrentRssBytes() > 0) {
    FEDRA_CHECK_LT(rss_gb, 0.25 * full_gb)
        << "resident memory is not O(cohort + touched drift)";
  }

  std::printf(
      "\nFDA synced %llu times to FedAvg's %llu (%.2fx the bytes), while\n"
      "the whole %zu-client simulation held %.2f GB resident vs the %.1f GB\n"
      "a fully materialized population would need.\n",
      static_cast<unsigned long long>(fda.total_syncs),
      static_cast<unsigned long long>(avg.total_syncs),
      static_cast<double>(avg.comm.bytes_total) /
          static_cast<double>(
              fda.comm.bytes_total > 0 ? fda.comm.bytes_total : 1),
      config.population, rss_gb, full_gb);
  return 0;
}
