// Non-IID robustness: the drone-fleet scenario from the paper's
// introduction. A fleet of drones maps an area; each drone's camera sees a
// biased slice of the world (some drones see almost only one terrain
// class). The example trains one global classifier with LinearFDA under
// increasingly skewed data distributions and shows FDA's costs barely
// move — the paper's §4.2(4) finding.

#include <cstdio>

#include "core/algorithms.h"
#include "core/trainer.h"
#include "data/synth.h"
#include "nn/zoo.h"
#include "util/string_util.h"

using namespace fedra;

int main() {
  SynthImageConfig terrain = CifarLikeConfig();  // 3-channel "camera" tiles
  terrain.num_train = 2048;
  terrain.num_test = 512;
  auto data = GenerateSynthImages(terrain);
  FEDRA_CHECK_OK(data.status());

  ModelFactory factory = [] { return zoo::LeNet5(3, 16, 10); };
  std::printf("fleet classifier: LeNet-5-style, d = %zu\n",
              factory()->num_params());

  struct Scenario {
    const char* description;
    PartitionConfig partition;
  };
  const Scenario scenarios[] = {
      {"uniform patrol routes (IID)", PartitionConfig::Iid()},
      {"terrain class 0 seen by only 2 drones",
       PartitionConfig::LabelToFew(0, 2)},
      {"60% of footage is route-sorted", PartitionConfig::SortedFraction(0.6)},
  };

  std::printf("\n%-44s %8s %10s %8s %8s\n", "scenario", "steps", "comm",
              "syncs", "accuracy");
  double iid_comm = 0.0;
  for (const auto& scenario : scenarios) {
    TrainerConfig config;
    config.num_workers = 6;  // the fleet
    config.batch_size = 8;
    config.local_optimizer = OptimizerConfig::Adam(0.002f);
    config.partition = scenario.partition;
    config.accuracy_target = 0.85;
    config.max_steps = 500;
    config.eval_every_steps = 25;
    DistributedTrainer trainer(factory, data->train, data->test, config);
    auto policy = MakeSyncPolicy(AlgorithmConfig::LinearFda(2.0),
                                 trainer.model_dim());
    FEDRA_CHECK_OK(policy.status());
    auto result = trainer.Run(policy->get());
    FEDRA_CHECK_OK(result.status());
    const double comm_mb =
        static_cast<double>(result->bytes_to_target) / (1024.0 * 1024.0);
    if (iid_comm == 0.0) {
      iid_comm = comm_mb;
    }
    std::printf("%-44s %8zu %8.2f MB %8llu %7.1f%%  (%.1fx IID comm)\n",
                scenario.description, result->steps_to_target, comm_mb,
                static_cast<unsigned long long>(result->syncs_to_target),
                100.0 * result->final_test_accuracy, comm_mb / iid_comm);
  }
  std::printf(
      "\nThe variance trigger adapts to the skew automatically: when biased\n"
      "shards pull the local models apart faster, FDA simply synchronizes\n"
      "at the moment the drift warrants it — no schedule retuning.\n");
  return 0;
}
