// Federated fine-tuning (the paper's Fig. 13 scenario as an application):
// a ConvNeXt-style backbone is pre-trained centrally on a source task,
// then fine-tuned across a small federated cohort on a related target
// task. SketchFDA decides when the cohort needs to synchronize.

#include <cstdio>

#include "core/algorithms.h"
#include "core/trainer.h"
#include "data/batching.h"
#include "data/transfer.h"
#include "metrics/evaluation.h"
#include "nn/loss.h"
#include "nn/zoo.h"
#include "opt/optimizer.h"
#include "util/string_util.h"

using namespace fedra;

int main() {
  TransferConfig transfer = TransferConfig::Default();
  transfer.source.num_train = 2048;
  transfer.target.num_train = 1024;
  auto scenario = MakeTransferScenario(transfer);
  FEDRA_CHECK_OK(scenario.status());

  ModelFactory factory = [] { return zoo::ConvNeXtLite(3, 16, 10, 16); };
  auto model = factory();
  model->InitParams(1);
  std::printf("backbone: ConvNeXtLite, d = %zu\n", model->num_params());

  // --- Stage 1: centralized pre-training on the source task.
  auto optimizer = Optimizer::Create(OptimizerConfig::AdamW(0.002f, 0.01f),
                                     model->num_params());
  std::vector<size_t> all(scenario->source.train.size());
  for (size_t i = 0; i < all.size(); ++i) {
    all[i] = i;
  }
  BatchSampler sampler(all, 8, Rng(2));
  Rng rng(3);
  for (int step = 0; step < 300; ++step) {
    const auto& batch = sampler.NextBatch();
    Tensor images = scenario->source.train.GatherImages(batch);
    std::vector<int> labels = scenario->source.train.GatherLabels(batch);
    model->ZeroGrads();
    Tensor logits = model->Forward(images, true, &rng);
    LossResult loss = SoftmaxCrossEntropy(logits, labels);
    model->Backward(loss.grad_logits);
    optimizer->Step(model->params(), model->grads(), model->num_params());
  }
  std::printf("pre-training: source accuracy %.1f%%, zero-shot target "
              "accuracy %.1f%%\n",
              100.0 * Evaluate(model.get(), scenario->source.test).accuracy,
              100.0 * Evaluate(model.get(), scenario->target.test).accuracy);

  // --- Stage 2: federated fine-tuning on the target task with SketchFDA.
  TrainerConfig config;
  config.num_workers = 5;
  config.batch_size = 8;
  config.local_optimizer = OptimizerConfig::AdamW(0.001f, 0.01f);
  config.accuracy_target = 0.75;
  config.max_steps = 300;
  config.eval_every_steps = 20;
  DistributedTrainer trainer(factory, scenario->target.train,
                             scenario->target.test, config);
  trainer.SetInitialParams(std::vector<float>(
      model->params(), model->params() + model->num_params()));
  auto policy = MakeSyncPolicy(AlgorithmConfig::SketchFda(0.008),
                               trainer.model_dim());
  FEDRA_CHECK_OK(policy.status());
  auto result = trainer.Run(policy->get());
  FEDRA_CHECK_OK(result.status());
  std::printf("\nfine-tuning with %s:\n", result->algorithm.c_str());
  std::printf("  target accuracy %.1f%% after %zu in-parallel steps\n",
              100.0 * result->final_test_accuracy, result->total_steps);
  std::printf("  %llu model syncs; communication %s\n",
              static_cast<unsigned long long>(result->total_syncs),
              HumanBytes(static_cast<double>(result->comm.bytes_total))
                  .c_str());
  std::printf("\nfine-tuning drifts are small and directional — exactly the "
              "regime where\nSketchFDA's tight variance estimate avoids "
              "needless synchronization (Fig. 13).\n");
  return 0;
}
