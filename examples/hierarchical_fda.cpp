// Hierarchical (edge -> cloud) FDA: the same training run under a flat
// federated channel vs. a two-tier topology — 8 edge workers in 2 clusters,
// fast LAN links inside each cluster, one slow uplink between them. The
// grouped AllReduce (reduce within cluster -> exchange across -> broadcast
// down) keeps most payload movement on the cheap tier, and the per-tier
// CommStats breakdown shows exactly where the simulated seconds went.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/hierarchical_fda

#include <cstdio>

#include "core/algorithms.h"
#include "core/trainer.h"
#include "data/synth.h"
#include "nn/zoo.h"
#include "util/string_util.h"

using namespace fedra;

int main() {
  SynthImageConfig data_config = MnistLikeConfig();
  data_config.num_train = 2048;
  data_config.num_test = 512;
  data_config.image_size = 16;
  auto data = GenerateSynthImages(data_config);
  FEDRA_CHECK_OK(data.status());

  ModelFactory factory = [] { return zoo::Mlp(16 * 16, {32}, 10); };
  std::printf("model: MLP with d = %zu parameters\n",
              factory()->num_params());

  TrainerConfig config;
  config.num_workers = 8;  // K edge workers
  config.batch_size = 16;
  config.local_optimizer = OptimizerConfig::Adam(0.002f);
  config.seed = 17;
  config.max_steps = 400;
  config.eval_every_steps = 50;
  config.eval_subset = 256;
  config.network = NetworkModel::Federated();

  struct Scenario {
    const char* label;
    HierarchicalNetworkModel hierarchy;
  };
  const Scenario scenarios[] = {
      {"flat federated channel", HierarchicalNetworkModel::None()},
      {"edge->cloud, 2 clusters", HierarchicalNetworkModel::EdgeCloud(2)},
  };

  for (const Scenario& scenario : scenarios) {
    TrainerConfig run_config = config;
    run_config.hierarchy = scenario.hierarchy;
    DistributedTrainer trainer(factory, data->train, data->test, run_config);
    auto policy = MakeSyncPolicy(AlgorithmConfig::LinearFda(/*theta=*/1.0),
                                 trainer.model_dim());
    FEDRA_CHECK_OK(policy.status());
    auto result = trainer.Run(policy->get());
    FEDRA_CHECK_OK(result.status());
    const CommStats& comm = result->comm;
    std::printf(
        "\n%s [%s]\n"
        "  final test accuracy: %.1f%%  (model syncs: %llu)\n"
        "  communication: %s total (state %s, model %s)\n"
        "  comm seconds: %.3fs total\n"
        "    by tier:  intra-cluster %.3fs | cross-cluster uplink %.3fs\n"
        "    by class: local state %.3fs | model sync %.3fs\n",
        result->algorithm.c_str(), scenario.label,
        100.0 * result->final_test_accuracy,
        static_cast<unsigned long long>(result->total_syncs),
        HumanBytes(static_cast<double>(comm.bytes_total)).c_str(),
        HumanBytes(static_cast<double>(comm.bytes_local_state)).c_str(),
        HumanBytes(static_cast<double>(comm.bytes_model_sync)).c_str(),
        comm.comm_seconds, comm.seconds_intra, comm.seconds_uplink,
        comm.seconds_local_state, comm.seconds_model_sync);
  }
  std::printf(
      "\nIn the flat topology every synchronization pushes all K payloads\n"
      "through the slow shared channel; grouped over the hierarchy, only\n"
      "the cluster leaders cross the uplink while member traffic stays on\n"
      "the edge LAN tier.\n");
  return 0;
}
