#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the test suite.
# Usage: scripts/verify.sh [build-dir]
# Extra cmake options (e.g. -DFEDRA_SANITIZE=ON) pass through via
# FEDRA_CMAKE_ARGS.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

# Determinism lint first: no build needed, fails fast. The self-test proves
# the lint's own rules still fire before the rules are trusted on src/.
python3 scripts/lint_determinism.py --self-test
python3 scripts/lint_determinism.py src
echo "lint: determinism lint clean on src/"

# shellcheck disable=SC2086  # word-splitting of the extra args is the point
cmake -B "$BUILD_DIR" -S . ${FEDRA_CMAKE_ARGS:-}
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

# Trainer-level smoke runs: drive the examples end-to-end after the unit
# suite so whole-trainer regressions surface even when every unit test
# passes. All finish in seconds. deep_tree_fda additionally CHECKs the
# hierarchical scheduler's uplink savings against flat FDA; churn_fda
# CHECKs FDA's accuracy and bounded uplink overhead under worker churn and
# message loss against a fault-oblivious FedAvg strawman; fleet_fda
# (shrunk via FEDRA_FLEET_SMOKE) CHECKs the paged-store fleet: a sampled
# 10^4-client population learning under churn in O(cohort + touched drift)
# memory with FDA out-communicating every-round FedAvg; compressed_fleet_fda
# CHECKs the WireCodec pipeline on that same fleet — top-k + 8-bit sync
# payloads with error feedback paged through the client store must cut
# uplink sync bytes >= 4x at the same accuracy target.
"$BUILD_DIR/quickstart" > /dev/null
"$BUILD_DIR/hierarchical_fda" > /dev/null
"$BUILD_DIR/deep_tree_fda" > /dev/null
"$BUILD_DIR/churn_fda" > /dev/null
FEDRA_FLEET_SMOKE=1 "$BUILD_DIR/fleet_fda" > /dev/null
FEDRA_FLEET_SMOKE=1 "$BUILD_DIR/compressed_fleet_fda" > /dev/null
echo "smoke: quickstart + hierarchical_fda + deep_tree_fda + churn_fda" \
     "+ fleet_fda + compressed_fleet_fda OK"
