#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the test suite.
# Usage: scripts/verify.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

# Trainer-level smoke runs: drive two examples end-to-end after the unit
# suite so whole-trainer regressions surface even when every unit test
# passes. Both finish in seconds.
"$BUILD_DIR/quickstart" > /dev/null
"$BUILD_DIR/hierarchical_fda" > /dev/null
echo "smoke: quickstart + hierarchical_fda OK"
