#!/usr/bin/env python3
"""Determinism lint: static checks for fedra's bit-reproducibility contract.

FDA histories are specified to be bit-identical across FEDRA_NUM_THREADS
settings and fault schedules (see docs/determinism.md). That only holds
while every stochastic or order-sensitive construct goes through the
blessed mechanisms: seeded util/rng streams, the fixed-chunk reduction
helpers, and the work-stealing ThreadPool. This lint walks C++ sources and
fails on the constructs that historically smuggle nondeterminism into FL
codebases:

  std-rand            C PRNG (rand/srand/std::rand): global hidden state,
                      not forkable per worker, often time-seeded.
  random-device       std::random_device outside util/rng: fresh entropy
                      per run, irreproducible by construction.
  wall-clock-seed     time(...)/clock()/gettimeofday/system_clock: wall
                      clocks as entropy or control flow. steady_clock is
                      fine — it measures, it never seeds.
  unordered-iteration std::unordered_{map,set}: hash-order iteration is
                      libc++/libstdc++/ASLR dependent; feeding it into
                      float accumulation reorders the sum. Use std::map /
                      sorted vectors, or waive with a proof that iteration
                      order never reaches arithmetic.
  raw-thread          std::thread/std::async/std::jthread outside
                      util/thread_pool: ad-hoc threads bypass the pool's
                      deterministic fixed-chunk handout and its TSan-vetted
                      sleep/wake protocol.
  variable-chunk      ParallelFor/ParallelForRange whose grain is derived
                      from the thread count (num_threads()/
                      hardware_concurrency): chunk boundaries — and float
                      combine order — then depend on the machine. Use the
                      fixed 32768-element helpers (sim/collectives.cc
                      kReduceChunk) or another thread-count-independent
                      constant.
  raw-cpu-dispatch    __builtin_cpu_supports/cpuid probes or ISA-macro
                      #ifdefs (__AVX2__/__AVX512F__/__ARM_NEON/...) outside
                      src/tensor/simd_dispatch.*: scattered ISA branches
                      make which accumulation pattern ran depend on the
                      build flags and host CPU of each call site, which no
                      parity suite covers. All ISA selection goes through
                      the dispatch table (simd::Kernels()), where every
                      compiled-in level is parity-tested and the active
                      level is observable and pinnable (FEDRA_SIMD).

Waiver syntax — same line or the line directly above, reason mandatory:

    std::unordered_map<int, Entry> index_;  // fedra-nondeterminism-ok: keys
        // are only probed, never iterated; no accumulation sees hash order

A waiver without a reason is itself an error (empty-waiver): every escape
hatch must say why it is safe so reviewers can audit the claim.

Usage:
    lint_determinism.py [--self-test] [path ...]

Paths may be files or directories (searched recursively for .h/.cc/.cpp).
Exit 0 when clean, 1 on findings, 2 on usage errors. --self-test runs the
fixture files under tests/lint/ and verifies the expected findings fire.
"""

import os
import re
import sys

SOURCE_EXTENSIONS = (".h", ".cc", ".cpp")
WAIVER_MARKER = "fedra-nondeterminism-ok"
WAIVER_RE = re.compile(r"fedra-nondeterminism-ok\s*:?\s*(?P<reason>.*)")

# Files exempt from specific rules: the blessed implementations themselves.
RULE_ALLOWED_FILES = {
    "random-device": ("util/rng.h", "util/rng.cc"),
    "raw-thread": ("util/thread_pool.h", "util/thread_pool.cc"),
    "raw-cpu-dispatch": (
        "tensor/simd_dispatch.h",
        "tensor/simd_dispatch.cc",
    ),
}

RULES = [
    (
        "std-rand",
        re.compile(r"\bstd::rand\b|\bsrand\s*\(|(?<![\w:.])rand\s*\("),
        "C PRNG (rand/srand): hidden global state; use a seeded util/rng "
        "Rng (Fork(k) per worker) instead",
    ),
    (
        "random-device",
        re.compile(r"\brandom_device\b"),
        "std::random_device outside util/rng: fresh entropy makes runs "
        "irreproducible; derive streams from the run seed via Rng::Fork",
    ),
    (
        "wall-clock-seed",
        re.compile(
            r"\bsystem_clock\b|\bgettimeofday\s*\(|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
            r"|(?<![\w:.])clock\s*\(\s*\)"
        ),
        "wall-clock entropy (time()/clock()/system_clock): seeds or control "
        "flow from the clock differ per run; steady_clock measurement of "
        "elapsed time is fine, clock-derived values feeding logic are not",
    ),
    (
        "unordered-iteration",
        re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b"),
        "hash-ordered container: iteration order is implementation- and "
        "ASLR-dependent and must never feed float accumulation; use an "
        "ordered container or waive with proof the order never escapes",
    ),
    (
        "raw-thread",
        re.compile(r"\bstd::(?:thread|jthread|async)\b"),
        "raw thread outside util/thread_pool: bypasses the pool's "
        "deterministic fixed-chunk scheduling; use "
        "GlobalThreadPool().ParallelFor*/Schedule",
    ),
    (
        "raw-cpu-dispatch",
        re.compile(
            r"\b__builtin_cpu_(?:supports|init)\b|\b__get_cpuid\w*\b"
            r"|\b_xgetbv\b"
            r"|^\s*#\s*(?:el)?if(?:n?def)?\b.*\b__"
            r"(?:AVX|SSE|FMA|ARM_NEON|ARM_FEATURE)\w*\b"
        ),
        "raw CPU dispatch outside src/tensor/simd_dispatch.*: cpuid probes "
        "and ISA-macro #ifdefs pick an accumulation pattern per call site, "
        "untestable by the dispatch parity suite; route the kernel through "
        "simd::Kernels() instead",
    ),
]

# variable-chunk needs the call statement, matched separately over a window.
# Member access (pool.ParallelFor / GlobalThreadPool().ParallelForRange) is
# required so declarations and the pool's own implementation don't match.
PARALLEL_CALL_RE = re.compile(r"(?:\.|->)\s*ParallelFor(?:Range|2d)?\s*\(")
THREAD_COUNT_RE = re.compile(r"\bnum_threads\s*\(|\bhardware_concurrency\b")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(lines):
    """Returns lines with comments and string/char literals blanked out.

    Line count and column positions of surviving code are preserved so
    findings point at real locations. Waivers are extracted from the raw
    lines separately, before this pass.
    """
    out = []
    in_block_comment = False
    for line in lines:
        result = []
        i = 0
        n = len(line)
        in_string = None  # the quote char when inside a literal
        while i < n:
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if in_block_comment:
                if ch == "*" and nxt == "/":
                    in_block_comment = False
                    result.append("  ")
                    i += 2
                    continue
                result.append(" ")
                i += 1
                continue
            if in_string:
                if ch == "\\":
                    result.append("  ")
                    i += 2
                    continue
                if ch == in_string:
                    in_string = None
                result.append(" ")
                i += 1
                continue
            if ch == "/" and nxt == "/":
                break  # rest of line is a comment
            if ch == "/" and nxt == "*":
                in_block_comment = True
                result.append("  ")
                i += 2
                continue
            if ch in "\"'":
                in_string = ch
                result.append(" ")
                i += 1
                continue
            result.append(ch)
            i += 1
        out.append("".join(result))
    return out


def collect_waivers(lines, path, findings):
    """Maps 1-based line numbers -> waiver reason; flags empty reasons.

    A waiver covers its own line and, when it is the only content of the
    line (a standalone comment), the following line.
    """
    waivers = {}
    for idx, raw in enumerate(lines, start=1):
        if WAIVER_MARKER not in raw:
            continue
        match = WAIVER_RE.search(raw)
        reason = match.group("reason").strip() if match else ""
        if not reason:
            findings.append(
                Finding(
                    path,
                    idx,
                    "empty-waiver",
                    "fedra-nondeterminism-ok waiver without a reason: state "
                    "why the flagged construct cannot break determinism",
                )
            )
            continue
        waivers[idx] = reason
        stripped = raw.strip()
        if stripped.startswith("//") or stripped.startswith("/*"):
            # Standalone waiver comment: applies to the next line.
            waivers[idx + 1] = reason
    return waivers


def relpath_matches(path, suffixes):
    normalized = path.replace(os.sep, "/")
    return any(normalized.endswith(suffix) for suffix in suffixes)


def lint_file(path):
    findings = []
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
    except OSError as err:
        findings.append(Finding(path, 0, "io-error", str(err)))
        return findings

    waivers = collect_waivers(raw_lines, path, findings)
    code_lines = strip_comments_and_strings(raw_lines)

    def report(line_number, rule, message):
        if line_number in waivers:
            return
        findings.append(Finding(path, line_number, rule, message))

    for rule, pattern, message in RULES:
        allowed = RULE_ALLOWED_FILES.get(rule)
        if allowed and relpath_matches(path, allowed):
            continue
        for idx, line in enumerate(code_lines, start=1):
            if pattern.search(line):
                report(idx, rule, message)

    # variable-chunk: inspect a few lines of each ParallelFor* call for
    # thread-count-derived arguments (grain expressions split across lines).
    for idx, line in enumerate(code_lines, start=1):
        if not PARALLEL_CALL_RE.search(line):
            continue
        window = " ".join(code_lines[idx - 1 : idx + 3])
        if THREAD_COUNT_RE.search(window):
            report(
                idx,
                "variable-chunk",
                "parallel loop sized from the thread count: chunk "
                "boundaries (and float combine order) become "
                "machine-dependent; use a fixed-size grain like the 32768-"
                "element reduction helpers",
            )
    return findings


def iter_source_files(paths):
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        if not os.path.isdir(path):
            print(f"error: no such file or directory: {path}", file=sys.stderr)
            sys.exit(2)
        for root, dirs, files in os.walk(path):
            dirs.sort()
            for name in sorted(files):
                if name.endswith(SOURCE_EXTENSIONS):
                    yield os.path.join(root, name)


def run_lint(paths):
    findings = []
    for path in iter_source_files(paths):
        findings.extend(lint_file(path))
    for finding in findings:
        print(finding)
    if findings:
        print(
            f"\n{len(findings)} determinism finding(s). Fix, or waive a "
            f"provably-safe use with '// {WAIVER_MARKER}: <reason>' on or "
            "directly above the line.",
            file=sys.stderr,
        )
        return 1
    return 0


def self_test():
    """Fixture check: the clean file passes, the dirty file fires exactly
    the expected rules, and an unreasoned waiver is rejected."""
    here = os.path.dirname(os.path.abspath(__file__))
    fixtures = os.path.join(here, os.pardir, "tests", "lint")
    clean = os.path.join(fixtures, "fixture_clean.cc")
    dirty = os.path.join(fixtures, "fixture_violations.cc")
    for fixture in (clean, dirty):
        if not os.path.isfile(fixture):
            print(f"self-test: missing fixture {fixture}", file=sys.stderr)
            return 2

    failures = []
    clean_findings = lint_file(clean)
    if clean_findings:
        failures.append(
            "clean fixture should lint clean, got:\n  "
            + "\n  ".join(str(f) for f in clean_findings)
        )

    dirty_findings = lint_file(dirty)
    fired = {}
    for finding in dirty_findings:
        fired[finding.rule] = fired.get(finding.rule, 0) + 1
    expected = {
        "std-rand": 3,  # std::rand(), srand(), and the rand() cohort pick
        "random-device": 1,
        "wall-clock-seed": 3,  # time(nullptr), system_clock, round-rng time()
        "unordered-iteration": 1,
        "raw-thread": 2,  # std::thread and std::async
        "variable-chunk": 1,
        "raw-cpu-dispatch": 2,  # __builtin_cpu_supports and #ifdef __AVX2__
        "empty-waiver": 1,
    }
    if fired != expected:
        failures.append(
            f"violations fixture: expected rule counts {expected}, "
            f"got {fired}:\n  " + "\n  ".join(str(f) for f in dirty_findings)
        )

    if failures:
        for failure in failures:
            print(f"self-test FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"self-test OK: clean fixture passes, violations fixture fires "
        f"{sum(expected.values())} findings across {len(expected)} rules"
    )
    return 0


def main(argv):
    args = argv[1:]
    if "--self-test" in args:
        args.remove("--self-test")
        if args:
            print("--self-test takes no paths", file=sys.stderr)
            return 2
        return self_test()
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    return run_lint(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
