file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic_theta.dir/bench/bench_dynamic_theta.cc.o"
  "CMakeFiles/bench_dynamic_theta.dir/bench/bench_dynamic_theta.cc.o.d"
  "bench_dynamic_theta"
  "bench_dynamic_theta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_theta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
