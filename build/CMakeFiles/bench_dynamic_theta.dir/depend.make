# Empty dependencies file for bench_dynamic_theta.
# This may be replaced when dependencies are built.
