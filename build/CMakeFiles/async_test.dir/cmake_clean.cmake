file(REMOVE_RECURSE
  "CMakeFiles/async_test.dir/tests/async_test.cc.o"
  "CMakeFiles/async_test.dir/tests/async_test.cc.o.d"
  "async_test"
  "async_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
