file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_vgg_sweeps.dir/bench/bench_fig9_vgg_sweeps.cc.o"
  "CMakeFiles/bench_fig9_vgg_sweeps.dir/bench/bench_fig9_vgg_sweeps.cc.o.d"
  "bench_fig9_vgg_sweeps"
  "bench_fig9_vgg_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_vgg_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
