# Empty dependencies file for bench_fig9_vgg_sweeps.
# This may be replaced when dependencies are built.
