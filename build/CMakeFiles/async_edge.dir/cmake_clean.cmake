file(REMOVE_RECURSE
  "CMakeFiles/async_edge.dir/examples/async_edge.cpp.o"
  "CMakeFiles/async_edge.dir/examples/async_edge.cpp.o.d"
  "async_edge"
  "async_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
