# Empty dependencies file for async_edge.
# This may be replaced when dependencies are built.
