# Empty dependencies file for bench_fig4_vgg.
# This may be replaced when dependencies are built.
