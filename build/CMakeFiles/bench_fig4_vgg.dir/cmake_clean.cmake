file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_vgg.dir/bench/bench_fig4_vgg.cc.o"
  "CMakeFiles/bench_fig4_vgg.dir/bench/bench_fig4_vgg.cc.o.d"
  "bench_fig4_vgg"
  "bench_fig4_vgg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_vgg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
