file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_densenet201.dir/bench/bench_fig6_densenet201.cc.o"
  "CMakeFiles/bench_fig6_densenet201.dir/bench/bench_fig6_densenet201.cc.o.d"
  "bench_fig6_densenet201"
  "bench_fig6_densenet201.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_densenet201.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
