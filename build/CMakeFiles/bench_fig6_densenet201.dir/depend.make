# Empty dependencies file for bench_fig6_densenet201.
# This may be replaced when dependencies are built.
