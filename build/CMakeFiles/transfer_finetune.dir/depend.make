# Empty dependencies file for transfer_finetune.
# This may be replaced when dependencies are built.
