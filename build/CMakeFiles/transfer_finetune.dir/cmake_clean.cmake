file(REMOVE_RECURSE
  "CMakeFiles/transfer_finetune.dir/examples/transfer_finetune.cpp.o"
  "CMakeFiles/transfer_finetune.dir/examples/transfer_finetune.cpp.o.d"
  "transfer_finetune"
  "transfer_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
