file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_densenet121_sweeps.dir/bench/bench_fig10_densenet121_sweeps.cc.o"
  "CMakeFiles/bench_fig10_densenet121_sweeps.dir/bench/bench_fig10_densenet121_sweeps.cc.o.d"
  "bench_fig10_densenet121_sweeps"
  "bench_fig10_densenet121_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_densenet121_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
