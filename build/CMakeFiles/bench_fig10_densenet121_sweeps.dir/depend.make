# Empty dependencies file for bench_fig10_densenet121_sweeps.
# This may be replaced when dependencies are built.
