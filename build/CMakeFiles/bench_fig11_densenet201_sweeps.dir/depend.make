# Empty dependencies file for bench_fig11_densenet201_sweeps.
# This may be replaced when dependencies are built.
