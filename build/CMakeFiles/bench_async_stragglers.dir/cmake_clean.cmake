file(REMOVE_RECURSE
  "CMakeFiles/bench_async_stragglers.dir/bench/bench_async_stragglers.cc.o"
  "CMakeFiles/bench_async_stragglers.dir/bench/bench_async_stragglers.cc.o.d"
  "bench_async_stragglers"
  "bench_async_stragglers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_async_stragglers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
