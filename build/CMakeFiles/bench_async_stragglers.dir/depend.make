# Empty dependencies file for bench_async_stragglers.
# This may be replaced when dependencies are built.
