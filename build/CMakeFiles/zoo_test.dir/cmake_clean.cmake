file(REMOVE_RECURSE
  "CMakeFiles/zoo_test.dir/tests/zoo_test.cc.o"
  "CMakeFiles/zoo_test.dir/tests/zoo_test.cc.o.d"
  "zoo_test"
  "zoo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
