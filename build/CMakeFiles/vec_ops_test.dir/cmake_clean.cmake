file(REMOVE_RECURSE
  "CMakeFiles/vec_ops_test.dir/tests/vec_ops_test.cc.o"
  "CMakeFiles/vec_ops_test.dir/tests/vec_ops_test.cc.o.d"
  "vec_ops_test"
  "vec_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vec_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
