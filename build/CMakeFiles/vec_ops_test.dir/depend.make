# Empty dependencies file for vec_ops_test.
# This may be replaced when dependencies are built.
