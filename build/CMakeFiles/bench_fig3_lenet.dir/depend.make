# Empty dependencies file for bench_fig3_lenet.
# This may be replaced when dependencies are built.
