file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_lenet.dir/bench/bench_fig3_lenet.cc.o"
  "CMakeFiles/bench_fig3_lenet.dir/bench/bench_fig3_lenet.cc.o.d"
  "bench_fig3_lenet"
  "bench_fig3_lenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_lenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
