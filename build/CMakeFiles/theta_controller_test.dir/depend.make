# Empty dependencies file for theta_controller_test.
# This may be replaced when dependencies are built.
