file(REMOVE_RECURSE
  "CMakeFiles/theta_controller_test.dir/tests/theta_controller_test.cc.o"
  "CMakeFiles/theta_controller_test.dir/tests/theta_controller_test.cc.o.d"
  "theta_controller_test"
  "theta_controller_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theta_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
