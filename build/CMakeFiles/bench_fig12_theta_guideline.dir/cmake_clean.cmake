file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_theta_guideline.dir/bench/bench_fig12_theta_guideline.cc.o"
  "CMakeFiles/bench_fig12_theta_guideline.dir/bench/bench_fig12_theta_guideline.cc.o.d"
  "bench_fig12_theta_guideline"
  "bench_fig12_theta_guideline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_theta_guideline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
