# Empty dependencies file for bench_fig12_theta_guideline.
# This may be replaced when dependencies are built.
