# Empty dependencies file for heterogeneity.
# This may be replaced when dependencies are built.
