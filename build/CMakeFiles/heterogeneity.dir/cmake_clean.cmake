file(REMOVE_RECURSE
  "CMakeFiles/heterogeneity.dir/examples/heterogeneity.cpp.o"
  "CMakeFiles/heterogeneity.dir/examples/heterogeneity.cpp.o.d"
  "heterogeneity"
  "heterogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
