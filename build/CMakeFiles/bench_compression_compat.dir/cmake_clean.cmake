file(REMOVE_RECURSE
  "CMakeFiles/bench_compression_compat.dir/bench/bench_compression_compat.cc.o"
  "CMakeFiles/bench_compression_compat.dir/bench/bench_compression_compat.cc.o.d"
  "bench_compression_compat"
  "bench_compression_compat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compression_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
