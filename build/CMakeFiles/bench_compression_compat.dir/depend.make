# Empty dependencies file for bench_compression_compat.
# This may be replaced when dependencies are built.
