file(REMOVE_RECURSE
  "CMakeFiles/fedra_bench_common.dir/bench/densenet_figure.cc.o"
  "CMakeFiles/fedra_bench_common.dir/bench/densenet_figure.cc.o.d"
  "CMakeFiles/fedra_bench_common.dir/bench/harness.cc.o"
  "CMakeFiles/fedra_bench_common.dir/bench/harness.cc.o.d"
  "CMakeFiles/fedra_bench_common.dir/bench/presets.cc.o"
  "CMakeFiles/fedra_bench_common.dir/bench/presets.cc.o.d"
  "CMakeFiles/fedra_bench_common.dir/bench/sweep_figure.cc.o"
  "CMakeFiles/fedra_bench_common.dir/bench/sweep_figure.cc.o.d"
  "libfedra_bench_common.a"
  "libfedra_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedra_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
