file(REMOVE_RECURSE
  "libfedra_bench_common.a"
)
