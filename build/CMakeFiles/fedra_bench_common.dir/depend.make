# Empty dependencies file for fedra_bench_common.
# This may be replaced when dependencies are built.
