
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/densenet_figure.cc" "CMakeFiles/fedra_bench_common.dir/bench/densenet_figure.cc.o" "gcc" "CMakeFiles/fedra_bench_common.dir/bench/densenet_figure.cc.o.d"
  "/root/repo/bench/harness.cc" "CMakeFiles/fedra_bench_common.dir/bench/harness.cc.o" "gcc" "CMakeFiles/fedra_bench_common.dir/bench/harness.cc.o.d"
  "/root/repo/bench/presets.cc" "CMakeFiles/fedra_bench_common.dir/bench/presets.cc.o" "gcc" "CMakeFiles/fedra_bench_common.dir/bench/presets.cc.o.d"
  "/root/repo/bench/sweep_figure.cc" "CMakeFiles/fedra_bench_common.dir/bench/sweep_figure.cc.o" "gcc" "CMakeFiles/fedra_bench_common.dir/bench/sweep_figure.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/fedra.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
