file(REMOVE_RECURSE
  "libfedra_test_util.a"
)
