file(REMOVE_RECURSE
  "CMakeFiles/fedra_test_util.dir/tests/test_util.cc.o"
  "CMakeFiles/fedra_test_util.dir/tests/test_util.cc.o.d"
  "libfedra_test_util.a"
  "libfedra_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedra_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
