# Empty dependencies file for fedra_test_util.
# This may be replaced when dependencies are built.
