file(REMOVE_RECURSE
  "CMakeFiles/backend_parity_test.dir/tests/backend_parity_test.cc.o"
  "CMakeFiles/backend_parity_test.dir/tests/backend_parity_test.cc.o.d"
  "backend_parity_test"
  "backend_parity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backend_parity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
