# Empty dependencies file for bandwidth_budget.
# This may be replaced when dependencies are built.
