file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_budget.dir/examples/bandwidth_budget.cpp.o"
  "CMakeFiles/bandwidth_budget.dir/examples/bandwidth_budget.cpp.o.d"
  "bandwidth_budget"
  "bandwidth_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
