file(REMOVE_RECURSE
  "libfedra.a"
)
