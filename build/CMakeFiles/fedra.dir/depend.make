# Empty dependencies file for fedra.
# This may be replaced when dependencies are built.
