
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/algorithms.cc" "CMakeFiles/fedra.dir/src/core/algorithms.cc.o" "gcc" "CMakeFiles/fedra.dir/src/core/algorithms.cc.o.d"
  "/root/repo/src/core/async_fda.cc" "CMakeFiles/fedra.dir/src/core/async_fda.cc.o" "gcc" "CMakeFiles/fedra.dir/src/core/async_fda.cc.o.d"
  "/root/repo/src/core/baselines.cc" "CMakeFiles/fedra.dir/src/core/baselines.cc.o" "gcc" "CMakeFiles/fedra.dir/src/core/baselines.cc.o.d"
  "/root/repo/src/core/compression.cc" "CMakeFiles/fedra.dir/src/core/compression.cc.o" "gcc" "CMakeFiles/fedra.dir/src/core/compression.cc.o.d"
  "/root/repo/src/core/fda_policy.cc" "CMakeFiles/fedra.dir/src/core/fda_policy.cc.o" "gcc" "CMakeFiles/fedra.dir/src/core/fda_policy.cc.o.d"
  "/root/repo/src/core/fedopt_policy.cc" "CMakeFiles/fedra.dir/src/core/fedopt_policy.cc.o" "gcc" "CMakeFiles/fedra.dir/src/core/fedopt_policy.cc.o.d"
  "/root/repo/src/core/theta_controller.cc" "CMakeFiles/fedra.dir/src/core/theta_controller.cc.o" "gcc" "CMakeFiles/fedra.dir/src/core/theta_controller.cc.o.d"
  "/root/repo/src/core/trainer.cc" "CMakeFiles/fedra.dir/src/core/trainer.cc.o" "gcc" "CMakeFiles/fedra.dir/src/core/trainer.cc.o.d"
  "/root/repo/src/core/variance_monitor.cc" "CMakeFiles/fedra.dir/src/core/variance_monitor.cc.o" "gcc" "CMakeFiles/fedra.dir/src/core/variance_monitor.cc.o.d"
  "/root/repo/src/data/batching.cc" "CMakeFiles/fedra.dir/src/data/batching.cc.o" "gcc" "CMakeFiles/fedra.dir/src/data/batching.cc.o.d"
  "/root/repo/src/data/dataset.cc" "CMakeFiles/fedra.dir/src/data/dataset.cc.o" "gcc" "CMakeFiles/fedra.dir/src/data/dataset.cc.o.d"
  "/root/repo/src/data/partition.cc" "CMakeFiles/fedra.dir/src/data/partition.cc.o" "gcc" "CMakeFiles/fedra.dir/src/data/partition.cc.o.d"
  "/root/repo/src/data/synth.cc" "CMakeFiles/fedra.dir/src/data/synth.cc.o" "gcc" "CMakeFiles/fedra.dir/src/data/synth.cc.o.d"
  "/root/repo/src/data/transfer.cc" "CMakeFiles/fedra.dir/src/data/transfer.cc.o" "gcc" "CMakeFiles/fedra.dir/src/data/transfer.cc.o.d"
  "/root/repo/src/metrics/ascii_plot.cc" "CMakeFiles/fedra.dir/src/metrics/ascii_plot.cc.o" "gcc" "CMakeFiles/fedra.dir/src/metrics/ascii_plot.cc.o.d"
  "/root/repo/src/metrics/evaluation.cc" "CMakeFiles/fedra.dir/src/metrics/evaluation.cc.o" "gcc" "CMakeFiles/fedra.dir/src/metrics/evaluation.cc.o.d"
  "/root/repo/src/metrics/kde.cc" "CMakeFiles/fedra.dir/src/metrics/kde.cc.o" "gcc" "CMakeFiles/fedra.dir/src/metrics/kde.cc.o.d"
  "/root/repo/src/metrics/summary.cc" "CMakeFiles/fedra.dir/src/metrics/summary.cc.o" "gcc" "CMakeFiles/fedra.dir/src/metrics/summary.cc.o.d"
  "/root/repo/src/nn/composite.cc" "CMakeFiles/fedra.dir/src/nn/composite.cc.o" "gcc" "CMakeFiles/fedra.dir/src/nn/composite.cc.o.d"
  "/root/repo/src/nn/init.cc" "CMakeFiles/fedra.dir/src/nn/init.cc.o" "gcc" "CMakeFiles/fedra.dir/src/nn/init.cc.o.d"
  "/root/repo/src/nn/layers_basic.cc" "CMakeFiles/fedra.dir/src/nn/layers_basic.cc.o" "gcc" "CMakeFiles/fedra.dir/src/nn/layers_basic.cc.o.d"
  "/root/repo/src/nn/layers_conv.cc" "CMakeFiles/fedra.dir/src/nn/layers_conv.cc.o" "gcc" "CMakeFiles/fedra.dir/src/nn/layers_conv.cc.o.d"
  "/root/repo/src/nn/layers_norm.cc" "CMakeFiles/fedra.dir/src/nn/layers_norm.cc.o" "gcc" "CMakeFiles/fedra.dir/src/nn/layers_norm.cc.o.d"
  "/root/repo/src/nn/loss.cc" "CMakeFiles/fedra.dir/src/nn/loss.cc.o" "gcc" "CMakeFiles/fedra.dir/src/nn/loss.cc.o.d"
  "/root/repo/src/nn/model.cc" "CMakeFiles/fedra.dir/src/nn/model.cc.o" "gcc" "CMakeFiles/fedra.dir/src/nn/model.cc.o.d"
  "/root/repo/src/nn/parameter_store.cc" "CMakeFiles/fedra.dir/src/nn/parameter_store.cc.o" "gcc" "CMakeFiles/fedra.dir/src/nn/parameter_store.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "CMakeFiles/fedra.dir/src/nn/serialize.cc.o" "gcc" "CMakeFiles/fedra.dir/src/nn/serialize.cc.o.d"
  "/root/repo/src/nn/zoo.cc" "CMakeFiles/fedra.dir/src/nn/zoo.cc.o" "gcc" "CMakeFiles/fedra.dir/src/nn/zoo.cc.o.d"
  "/root/repo/src/opt/optimizer.cc" "CMakeFiles/fedra.dir/src/opt/optimizer.cc.o" "gcc" "CMakeFiles/fedra.dir/src/opt/optimizer.cc.o.d"
  "/root/repo/src/sim/collectives.cc" "CMakeFiles/fedra.dir/src/sim/collectives.cc.o" "gcc" "CMakeFiles/fedra.dir/src/sim/collectives.cc.o.d"
  "/root/repo/src/sim/comm_stats.cc" "CMakeFiles/fedra.dir/src/sim/comm_stats.cc.o" "gcc" "CMakeFiles/fedra.dir/src/sim/comm_stats.cc.o.d"
  "/root/repo/src/sim/network_model.cc" "CMakeFiles/fedra.dir/src/sim/network_model.cc.o" "gcc" "CMakeFiles/fedra.dir/src/sim/network_model.cc.o.d"
  "/root/repo/src/sim/straggler.cc" "CMakeFiles/fedra.dir/src/sim/straggler.cc.o" "gcc" "CMakeFiles/fedra.dir/src/sim/straggler.cc.o.d"
  "/root/repo/src/sketch/ams_sketch.cc" "CMakeFiles/fedra.dir/src/sketch/ams_sketch.cc.o" "gcc" "CMakeFiles/fedra.dir/src/sketch/ams_sketch.cc.o.d"
  "/root/repo/src/sketch/hashing.cc" "CMakeFiles/fedra.dir/src/sketch/hashing.cc.o" "gcc" "CMakeFiles/fedra.dir/src/sketch/hashing.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "CMakeFiles/fedra.dir/src/tensor/ops.cc.o" "gcc" "CMakeFiles/fedra.dir/src/tensor/ops.cc.o.d"
  "/root/repo/src/tensor/ref_ops.cc" "CMakeFiles/fedra.dir/src/tensor/ref_ops.cc.o" "gcc" "CMakeFiles/fedra.dir/src/tensor/ref_ops.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "CMakeFiles/fedra.dir/src/tensor/tensor.cc.o" "gcc" "CMakeFiles/fedra.dir/src/tensor/tensor.cc.o.d"
  "/root/repo/src/tensor/vec_ops.cc" "CMakeFiles/fedra.dir/src/tensor/vec_ops.cc.o" "gcc" "CMakeFiles/fedra.dir/src/tensor/vec_ops.cc.o.d"
  "/root/repo/src/util/csv.cc" "CMakeFiles/fedra.dir/src/util/csv.cc.o" "gcc" "CMakeFiles/fedra.dir/src/util/csv.cc.o.d"
  "/root/repo/src/util/logging.cc" "CMakeFiles/fedra.dir/src/util/logging.cc.o" "gcc" "CMakeFiles/fedra.dir/src/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "CMakeFiles/fedra.dir/src/util/rng.cc.o" "gcc" "CMakeFiles/fedra.dir/src/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "CMakeFiles/fedra.dir/src/util/status.cc.o" "gcc" "CMakeFiles/fedra.dir/src/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "CMakeFiles/fedra.dir/src/util/string_util.cc.o" "gcc" "CMakeFiles/fedra.dir/src/util/string_util.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "CMakeFiles/fedra.dir/src/util/thread_pool.cc.o" "gcc" "CMakeFiles/fedra.dir/src/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
