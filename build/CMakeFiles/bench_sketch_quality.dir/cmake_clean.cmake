file(REMOVE_RECURSE
  "CMakeFiles/bench_sketch_quality.dir/bench/bench_sketch_quality.cc.o"
  "CMakeFiles/bench_sketch_quality.dir/bench/bench_sketch_quality.cc.o.d"
  "bench_sketch_quality"
  "bench_sketch_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sketch_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
