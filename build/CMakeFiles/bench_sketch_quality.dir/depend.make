# Empty dependencies file for bench_sketch_quality.
# This may be replaced when dependencies are built.
