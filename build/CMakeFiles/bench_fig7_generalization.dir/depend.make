# Empty dependencies file for bench_fig7_generalization.
# This may be replaced when dependencies are built.
