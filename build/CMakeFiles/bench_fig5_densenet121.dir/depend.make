# Empty dependencies file for bench_fig5_densenet121.
# This may be replaced when dependencies are built.
