file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_densenet121.dir/bench/bench_fig5_densenet121.cc.o"
  "CMakeFiles/bench_fig5_densenet121.dir/bench/bench_fig5_densenet121.cc.o.d"
  "bench_fig5_densenet121"
  "bench_fig5_densenet121.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_densenet121.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
