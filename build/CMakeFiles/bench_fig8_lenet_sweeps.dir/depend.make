# Empty dependencies file for bench_fig8_lenet_sweeps.
# This may be replaced when dependencies are built.
