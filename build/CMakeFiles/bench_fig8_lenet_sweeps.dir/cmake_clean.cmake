file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_lenet_sweeps.dir/bench/bench_fig8_lenet_sweeps.cc.o"
  "CMakeFiles/bench_fig8_lenet_sweeps.dir/bench/bench_fig8_lenet_sweeps.cc.o.d"
  "bench_fig8_lenet_sweeps"
  "bench_fig8_lenet_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_lenet_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
